"""Update handling for HINT^m (paper Sections 3.4 and 4.4).

The fully optimized HINT^m is query-optimized and static, so mixed workloads
use the paper's *hybrid* setting:

* a **main index** (:class:`repro.hint.optimized.OptimizedHINTm`) holding the
  bulk of the data, rebuilt periodically in batches,
* a **delta index** (:class:`repro.hint.subdivided.SubdividedHINTm`, the
  update-friendly ``subs+sopt`` configuration without sorted subdivisions)
  that absorbs the latest insertions one by one,
* **tombstones** for deletions, applied to whichever of the two indexes holds
  the deleted interval.

Every query probes both indexes and concatenates the results (the two are
disjoint by construction).  :meth:`HybridHINTm.rebuild` merges the delta into
a freshly built main index, which is what a periodic batch update does.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from repro.core.base import IntervalIndex, QueryStats
from repro.core.domain import Domain
from repro.core.interval import Interval, IntervalCollection, Query
from repro.engine.registry import register_backend
from repro.hint.optimized import OptimizedHINTm
from repro.hint.subdivided import SubdividedHINTm

__all__ = ["HybridHINTm"]


@register_backend(
    "hintm_hybrid",
    aliases=("hint-m-hybrid",),
    description="hybrid HINT^m: optimized main index + delta for updates",
    paper_section="Sections 3.4/4.4",
    tunable=True,
)
class HybridHINTm(IntervalIndex):
    """Hybrid HINT^m: optimized main index plus an update-friendly delta.

    Args:
        collection: the initially indexed intervals (go to the main index).
        num_bits: the ``m`` parameter used by both component indexes.
        rebuild_threshold: when the delta grows beyond this fraction of the
            main index, :meth:`insert` triggers an automatic :meth:`rebuild`.
            Set to ``None`` to disable automatic rebuilds.
    """

    name = "hint-m-hybrid"

    def __init__(
        self,
        collection: IntervalCollection,
        num_bits: int = 10,
        rebuild_threshold: Optional[float] = None,
    ) -> None:
        self._m = num_bits
        self._rebuild_threshold = rebuild_threshold
        # share one domain so both component indexes agree on partition bounds
        self._domain = Domain.for_collection(collection.starts, collection.ends, num_bits)
        main = OptimizedHINTm(collection, num_bits=num_bits, domain=self._domain)
        delta = SubdividedHINTm(
            IntervalCollection.empty(),
            num_bits=num_bits,
            sort_subdivisions=False,
            storage_optimization=True,
            domain=self._domain,
        )
        #: the (main, delta) pair lives in ONE attribute so lock-free readers
        #: always see a consistent pair: a rebuild swaps both components with
        #: a single assignment, never main and delta separately (two loads
        #: around the swap would miss the old delta or double-count it)
        self._components = (main, delta)
        self._rebuilds = 0
        #: approximate answered-query count since construction; read by the
        #: amortising rebuild policies of :mod:`repro.engine.maintenance`
        self.query_ops = 0
        #: serialises updates against :meth:`rebuild`: a rebuild snapshots
        #: main + delta and then swaps both, so an insert landing in the old
        #: delta between snapshot and swap would be silently discarded when
        #: a maintenance thread rebuilds concurrently.  Queries stay
        #: lock-free (they read whichever pair is current).
        self._update_lock = threading.RLock()
        #: content-version counter: bumped on every insert/delete (never on
        #: :meth:`rebuild`, which reorganises without changing the answer
        #: set) -- the authoritative :attr:`result_generation` source for
        #: stores wrapping this index
        self._mutations = 0
        #: update listeners: ``listener(op, interval, generation)`` fired
        #: under the update lock after an insert/delete commits, and with op
        #: ``"rebuild"`` (interval ``None``) after a batch rebuild swaps the
        #: components -- the standing-query delta engine's raw-index hook
        self._update_listeners: List[Callable[[str, Optional[Interval], int], None]] = []

    @classmethod
    def build(
        cls, collection: IntervalCollection, num_bits: int = 10, **kwargs
    ) -> "HybridHINTm":
        return cls(collection, num_bits=num_bits, **kwargs)

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def num_bits(self) -> int:
        """The ``m`` parameter."""
        return self._m

    @property
    def _main(self) -> OptimizedHINTm:
        return self._components[0]

    @property
    def _delta(self) -> SubdividedHINTm:
        return self._components[1]

    @property
    def main_index(self) -> OptimizedHINTm:
        """The optimized, periodically rebuilt component."""
        return self._components[0]

    @property
    def delta_index(self) -> SubdividedHINTm:
        """The update-friendly component absorbing recent insertions."""
        return self._components[1]

    @property
    def delta_size(self) -> int:
        """Number of live intervals currently in the delta index."""
        return len(self._components[1])

    @property
    def rebuilds(self) -> int:
        """How many times the main index has been rebuilt."""
        return self._rebuilds

    @property
    def result_generation(self) -> int:
        """Monotonic content-version token (see
        :meth:`repro.engine.store.IntervalStore.result_generation`)."""
        return self._mutations

    # ------------------------------------------------------------------ #
    # update listeners (the standing-query delta engine's raw-index hook)
    # ------------------------------------------------------------------ #
    def add_update_listener(
        self, listener: Callable[[str, Optional[Interval], int], None]
    ) -> None:
        """Observe this index's mutations; see
        :meth:`repro.engine.sharded.ShardedIndex.add_update_listener` for
        the event contract (here ``"rebuild"`` plays the ``"sync"`` role:
        the components were swapped, the answer set did not change)."""
        self._update_listeners.append(listener)

    def remove_update_listener(
        self, listener: Callable[[str, Optional[Interval], int], None]
    ) -> None:
        try:
            self._update_listeners.remove(listener)
        except ValueError:
            pass

    def _emit_update(self, op: str, interval: Optional[Interval], generation: int) -> None:
        for listener in list(self._update_listeners):
            listener(op, interval, generation)

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def insert(self, interval: Interval) -> None:
        """Insert into the delta index; optionally trigger a batch rebuild."""
        with self._update_lock:
            self._delta.insert(interval)
            self._mutations += 1
            if self._update_listeners:
                self._emit_update("insert", interval, self._mutations)
            if (
                self._rebuild_threshold is not None
                and len(self._main) > 0
                and len(self._delta) >= self._rebuild_threshold * len(self._main)
            ):
                self.rebuild()

    def delete(self, interval_id: int) -> bool:
        """Delete from whichever component holds the interval (tombstones)."""
        with self._update_lock:
            victim: Optional[Interval] = None
            if self._update_listeners:
                # resolve the span before the tombstone lands: listeners
                # route the delta by the deleted interval's range
                victim = self._resolve_interval(interval_id)
            found = self._delta.delete(interval_id) or self._main.delete(interval_id)
            if found:
                self._mutations += 1
                if self._update_listeners:
                    self._emit_update("delete", victim, self._mutations)
            return found

    def rebuild(self) -> None:
        """Merge the delta into a freshly built main index (batch update)."""
        with self._update_lock:
            live: List[Interval] = list(self._main._interval_lookup().values())
            live.extend(self._delta._interval_lookup().values())
            collection = IntervalCollection.from_intervals(live)
            self._domain = Domain.for_collection(
                collection.starts, collection.ends, self._m
            )
            main = OptimizedHINTm(collection, num_bits=self._m, domain=self._domain)
            delta = SubdividedHINTm(
                IntervalCollection.empty(),
                num_bits=self._m,
                sort_subdivisions=False,
                storage_optimization=True,
                domain=self._domain,
            )
            self._components = (main, delta)  # one swap: readers stay consistent
            self._rebuilds += 1
            if self._update_listeners:
                # the answer set did not change: a reorganisation marker,
                # not a delta (and no generation bump)
                self._emit_update("rebuild", None, self._mutations)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(self, query: Query) -> List[int]:
        self.query_ops += 1
        main, delta = self._components  # one load: a racing rebuild cannot split the pair
        results = main.query(query)
        if len(delta):
            results.extend(delta.query(query))
        return results

    def query_with_stats(self, query: Query) -> tuple[List[int], QueryStats]:
        self.query_ops += 1
        main, delta = self._components
        results, stats = main.query_with_stats(query)
        if len(delta):
            delta_results, delta_stats = delta.query_with_stats(query)
            results.extend(delta_results)
            stats.merge(delta_stats)
        stats.results = len(results)
        return results, stats

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        main, delta = self._components
        return len(main) + len(delta)

    def memory_bytes(self, _memo: "set | None" = None) -> int:
        if self._memo_seen(_memo):
            return 0
        # one id-memo across both components: objects they share (the domain,
        # aliased buffers) are counted once for the whole composite
        memo = _memo if _memo is not None else set()
        main, delta = self._components
        return main.memory_bytes(memo) + delta.memory_bytes(memo)

    def _interval_lookup(self) -> Dict[int, Interval]:
        main, delta = self._components
        lookup = main._interval_lookup()
        lookup.update(delta._interval_lookup())
        return lookup

    def _resolve_interval(self, interval_id: int) -> Optional[Interval]:
        main, delta = self._components
        found = delta._resolve_interval(interval_id)
        return found if found is not None else main._resolve_interval(interval_id)
