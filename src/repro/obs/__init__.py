"""``repro.obs`` -- the unified observability layer.

Three pieces, deliberately cutting across every tier of the stack:

* :mod:`repro.obs.metrics` -- thread-safe counters, gauges and
  log-bucketed histograms on a :class:`MetricsRegistry` (one process-global
  registry plus per-server views), rendered as Prometheus text by
  ``GET /metrics`` and snapshotted by ``/stats``;
* :mod:`repro.obs.tracing` -- ``trace_id``/``span_id`` context propagated
  from the cluster router through HTTP headers, executor threads and
  process-pool kernel tasks, producing one connected span tree per query;
* :mod:`repro.obs.slowlog` -- a threshold-gated ring buffer of completed
  span trees behind ``GET /slow-queries`` and ``repro slow-queries``.

See the README's "Observability" section for the exported metric table.
"""

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    parse_prometheus_text,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracing import (
    PARENT_HEADER,
    TRACE_HEADER,
    Trace,
    activate,
    bind,
    context_from_headers,
    current,
    headers_for,
    new_span_record,
    span,
    start_span,
)

__all__ = [
    "LATENCY_BUCKETS",
    "PARENT_HEADER",
    "TRACE_HEADER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SlowQueryLog",
    "Trace",
    "activate",
    "bind",
    "context_from_headers",
    "current",
    "global_registry",
    "headers_for",
    "new_span_record",
    "parse_prometheus_text",
    "span",
    "start_span",
]
