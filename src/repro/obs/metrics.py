"""Thread-safe metrics: counters, gauges, histograms, Prometheus exposition.

One :class:`MetricsRegistry` per scope.  A single process-global registry
(:func:`global_registry`) collects engine-level counters -- replica
failures, kernel retries, pool respawns, WAL records, maintenance passes --
that have no natural per-server owner; each server (``QueryServer``,
``ShardServer``, ``ClusterRouter``) builds its own registry with the global
one as ``parent``, so scraping any server's ``/metrics`` shows its private
serving counters *and* the process-wide engine state in one page.

Three metric kinds, all safe to update from any thread:

* :class:`Counter` -- monotone; ``inc()``.
* :class:`Gauge` -- point-in-time; ``set()``/``inc()``/``dec()``.
* :class:`Histogram` -- fixed log-spaced buckets (:data:`LATENCY_BUCKETS`
  by default) plus a bounded window of raw observations, so p50/p95/p99
  readout is exact over the last :data:`QUANTILE_WINDOW` observations
  instead of bucket-interpolated.

Metrics the system already maintains elsewhere (cache hit counters, WAL
gauges, stream poller lag) are registered as **pull** metrics
(:meth:`MetricsRegistry.counter_function` / :meth:`gauge_function`): the
callback is read at scrape time, so nothing is double-maintained.

:func:`MetricsRegistry.render` emits the Prometheus text exposition format;
:func:`parse_prometheus_text` is the strict inverse used by tests and the
smoke scripts to assert scrapes stay machine-readable.
"""

from __future__ import annotations

import math
import re
import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "LATENCY_BUCKETS",
    "QUANTILE_WINDOW",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "parse_prometheus_text",
]

#: fixed log-spaced latency buckets in seconds, ~100 us to 10 s (the serving
#: tier's observed range: cached hits sit in the lowest buckets, cold broad
#: fan-outs in the top ones)
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: observations a histogram retains for exact quantile readout; a ring
#: buffer, so quantiles describe the most recent window, not all time
QUANTILE_WINDOW = 2048

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _label_string(labelnames: Sequence[str], values: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in zip(labelnames, values)
    )
    return "{" + pairs + "}"


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Bucketed observations plus an exact quantile window.

    Buckets are cumulative upper bounds (Prometheus ``le`` semantics) with
    an implicit ``+Inf``.  Alongside the buckets, the last
    :data:`QUANTILE_WINDOW` raw observations are kept in a ring, so
    :meth:`quantile` is exact over that window -- the registry's
    ``/stats`` quantiles and the bench tables read it directly instead of
    interpolating bucket boundaries.
    """

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count", "_window", "_cursor")

    def __init__(self, buckets: Sequence[float] = LATENCY_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._lock = threading.Lock()
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot: +Inf
        self._sum = 0.0
        self._count = 0
        self._window: List[float] = []
        self._cursor = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            position = 0
            for bound in self.buckets:
                if value <= bound:
                    break
                position += 1
            self._counts[position] += 1
            self._sum += value
            self._count += 1
            if len(self._window) < QUANTILE_WINDOW:
                self._window.append(value)
            else:
                self._window[self._cursor] = value
                self._cursor = (self._cursor + 1) % QUANTILE_WINDOW

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Exact ``q``-quantile (nearest-rank) over the retained window."""
        with self._lock:
            window = sorted(self._window)
        if not window:
            return 0.0
        rank = min(len(window) - 1, max(0, int(math.ceil(q * len(window))) - 1))
        return window[rank]

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs, ending with ``(+Inf, count)``."""
        with self._lock:
            counts = list(self._counts)
        cumulative, out = 0, []
        for bound, count in zip(self.buckets, counts):
            cumulative += count
            out.append((bound, cumulative))
        out.append((math.inf, cumulative + counts[-1]))
        return out

    def summary(self) -> Dict[str, float]:
        """JSON-friendly ``{count, sum, mean, p50, p95, p99}`` readout."""
        count, total = self._count, self._sum
        return {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


_FACTORIES = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}

Metric = Union[Counter, Gauge, Histogram]


class MetricFamily:
    """One named metric and its per-label-value children.

    With no ``labelnames`` the family has exactly one (unlabeled) child,
    and the registry hands that child out directly; with labels,
    :meth:`labels` creates/returns the child for one label-value tuple.
    """

    __slots__ = ("name", "help", "kind", "labelnames", "_children", "_lock", "_kwargs")

    def __init__(
        self,
        name: str,
        help: str,
        kind: str,
        labelnames: Sequence[str] = (),
        **kwargs: object,
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        self.kind = kind
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.labelnames = tuple(labelnames)
        self._children: "OrderedDict[Tuple[str, ...], Metric]" = OrderedDict()
        self._lock = threading.Lock()
        self._kwargs = kwargs

    def labels(self, *values: object, **named: object) -> Metric:
        if named:
            if values:
                raise TypeError("pass label values positionally or by name, not both")
            values = tuple(named[name] for name in self.labelnames)
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, got {key!r}"
            )
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = _FACTORIES[self.kind](**self._kwargs)
                    self._children[key] = child
        return child

    def samples(self) -> List[Tuple[Tuple[str, ...], Metric]]:
        with self._lock:
            return list(self._children.items())


class _PullFamily:
    """A scrape-time metric: the callback is the value.

    ``fn`` returns a number (unlabeled) or a mapping of label-value tuples
    to numbers (labeled).  Exceptions in the callback drop the family from
    that scrape instead of failing the whole exposition.
    """

    __slots__ = ("name", "help", "kind", "labelnames", "fn")

    def __init__(
        self,
        name: str,
        help: str,
        kind: str,
        fn: Callable[[], object],
        labelnames: Sequence[str] = (),
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self.fn = fn

    def values(self) -> List[Tuple[Tuple[str, ...], float]]:
        try:
            result = self.fn()
        except Exception:  # noqa: BLE001 - a broken gauge must not kill /metrics
            return []
        if isinstance(result, Mapping):
            return [
                (tuple(str(part) for part in key) if isinstance(key, tuple) else (str(key),), float(value))
                for key, value in result.items()
            ]
        return [((), float(result))]


class MetricsRegistry:
    """A named collection of metric families, optionally chained to a parent.

    ``render()`` and ``snapshot()`` walk the parent chain first, so a
    per-server registry built over :func:`global_registry` exposes the
    process-wide engine metrics alongside its own; a name registered in
    both scopes resolves to the child's (the more specific owner wins).
    """

    def __init__(self, parent: "MetricsRegistry | None" = None) -> None:
        self._parent = parent
        self._lock = threading.Lock()
        self._families: "OrderedDict[str, object]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def _register(self, name: str, kind: str, help: str, labelnames, **kwargs):
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, MetricFamily) or existing.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as a different kind"
                    )
                if existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}"
                    )
                family = existing
            else:
                family = MetricFamily(name, help, kind, labelnames, **kwargs)
                self._families[name] = family
        return family if family.labelnames else family.labels()

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> "Counter | MetricFamily":
        """Register (idempotently) a counter; labeled form returns the family."""
        return self._register(name, "counter", help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> "Gauge | MetricFamily":
        return self._register(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> "Histogram | MetricFamily":
        return self._register(name, "histogram", help, labelnames, buckets=buckets)

    def _register_pull(self, name, kind, help, fn, labelnames):
        family = _PullFamily(name, help, kind, fn, labelnames)
        with self._lock:
            self._families[name] = family
        return family

    def counter_function(
        self, name: str, help: str, fn: Callable[[], object],
        labelnames: Sequence[str] = (),
    ) -> _PullFamily:
        """A counter whose value is pulled from ``fn`` at scrape time."""
        return self._register_pull(name, "counter", help, fn, labelnames)

    def gauge_function(
        self, name: str, help: str, fn: Callable[[], object],
        labelnames: Sequence[str] = (),
    ) -> _PullFamily:
        """A gauge whose value is pulled from ``fn`` at scrape time."""
        return self._register_pull(name, "gauge", help, fn, labelnames)

    # ------------------------------------------------------------------ #
    # exposition
    # ------------------------------------------------------------------ #
    def _merged_families(self) -> "OrderedDict[str, object]":
        merged: "OrderedDict[str, object]" = OrderedDict()
        if self._parent is not None:
            merged.update(self._parent._merged_families())
        with self._lock:
            merged.update(self._families)
        return merged

    def render(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name, family in self._merged_families().items():
            samples = self._family_samples(family)
            if samples is None:
                continue
            lines.append(f"# HELP {name} {family.help or name}")
            lines.append(f"# TYPE {name} {family.kind}")
            for labels, value in samples:
                if isinstance(value, Histogram):
                    label_prefix = _label_string(family.labelnames, labels)[1:-1]
                    for bound, count in value.bucket_counts():
                        le = f'le="{_format_value(bound)}"'
                        inner = f"{label_prefix},{le}" if label_prefix else le
                        lines.append(f"{name}_bucket{{{inner}}} {count}")
                    suffix = _label_string(family.labelnames, labels)
                    lines.append(f"{name}_sum{suffix} {_format_value(value.sum)}")
                    lines.append(f"{name}_count{suffix} {value.count}")
                else:
                    suffix = _label_string(family.labelnames, labels)
                    lines.append(f"{name}{suffix} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    @staticmethod
    def _family_samples(family):
        """Uniform ``[(labels, value-or-Histogram)]`` across family kinds."""
        if isinstance(family, _PullFamily):
            return family.values() or None
        samples = []
        for labels, metric in family.samples():
            if isinstance(metric, Histogram):
                samples.append((labels, metric))
            else:
                samples.append((labels, metric.value))
        return samples or None

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly registry state: one key per sample.

        Counters and gauges map to their value; histograms map to the
        :meth:`Histogram.summary` dict.  Labeled samples key as
        ``name{k="v",...}`` exactly as the text format renders them.
        """
        out: Dict[str, object] = {}
        for name, family in self._merged_families().items():
            samples = self._family_samples(family)
            if samples is None:
                if isinstance(family, _PullFamily):
                    continue
                samples = []
            for labels, value in samples:
                key = name + _label_string(family.labelnames, labels)
                out[key] = value.summary() if isinstance(value, Histogram) else value
        return out


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-global registry engine-level metrics land on."""
    return _GLOBAL


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Strictly parse a text-format exposition into ``{sample_name: value}``.

    The inverse of :meth:`MetricsRegistry.render`, used by tests and the
    smoke scripts to assert every scrape stays machine-parseable: any
    malformed line raises :class:`ValueError`.  Sample names keep their
    label string verbatim (``name{k="v"}``) so histograms' per-bucket
    samples stay distinct.
    """
    samples: Dict[str, float] = {}
    typed: Dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment {raw!r}")
            if parts[1] == "TYPE":
                if len(parts) < 4 or parts[3] not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    raise ValueError(f"line {lineno}: malformed TYPE {raw!r}")
                typed[parts[2]] = parts[3]
            continue
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)$", line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample {raw!r}")
        name, labels, value = match.groups()
        try:
            number = float(value)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: bad value {value!r}") from exc
        if math.isnan(number):
            raise ValueError(f"line {lineno}: NaN sample {raw!r}")
        samples[name + (labels or "")] = number
    if not typed:
        raise ValueError("no TYPE lines: not a Prometheus exposition")
    return samples
