"""The slow-query log: a ring buffer of completed span trees.

Every completed query-shaped request (``/query``, ``/batch``,
``/shard-batch``, a routed cluster query) whose wall time crosses the
configured threshold is recorded with its arguments, outcome tags
(cache hit/stale/miss, shard fan-out, replica failovers) and -- when the
request was traced -- its full span tree.  The buffer is bounded, so a
storm of slow queries evicts the oldest entries instead of growing; it is
surfaced by ``GET /slow-queries`` on the servers and ``repro slow-queries``
on the CLI.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional

__all__ = ["SlowQueryLog"]


class SlowQueryLog:
    """Threshold-gated ring buffer of slow-request records.

    Args:
        threshold: seconds a request must take to be recorded; 0 records
            everything (useful in tests and for ad-hoc trace capture).
        capacity: most entries retained (oldest evicted first).
    """

    def __init__(self, threshold: float = 0.1, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.threshold = float(threshold)
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: "deque[Dict[str, object]]" = deque(maxlen=self.capacity)
        self._recorded = 0

    @property
    def recorded(self) -> int:
        """Total entries ever recorded (monotone; feeds the slow counter)."""
        return self._recorded

    def record(
        self,
        endpoint: str,
        duration_s: float,
        *,
        args: Optional[Dict[str, object]] = None,
        tags: Optional[Dict[str, object]] = None,
        trace=None,
    ) -> bool:
        """Record one completed request if it crossed the threshold.

        ``trace`` is a :class:`~repro.obs.tracing.Trace` (its tree is
        materialised at record time, after every tier's spans landed) or
        ``None`` for untraced requests.  Returns whether it was recorded.
        """
        if duration_s < self.threshold:
            return False
        entry: Dict[str, object] = {
            "endpoint": endpoint,
            "duration_ms": duration_s * 1000.0,
            "recorded_at": time.time(),
            "args": dict(args or {}),
            "tags": dict(tags or {}),
        }
        if trace is not None:
            entry["trace_id"] = trace.trace_id
            entry["trace"] = trace.tree()
        with self._lock:
            self._entries.append(entry)
            self._recorded += 1
        return True

    def entries(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Recorded entries, most recent first."""
        with self._lock:
            out = list(self._entries)
        out.reverse()
        return out[:limit] if limit is not None else out

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
