"""Cross-tier query tracing: span trees over HTTP hops and process pools.

A trace is a flat, thread-safe list of **span records** (plain dicts, so
they pickle across process boundaries and encode to JSON unchanged) that
:meth:`Trace.tree` assembles into the per-query span tree the slow-query
log and ``/slow-queries`` expose::

    router_batch
      plan
      shard_probe (shard=0)          <- router-side HTTP span
        shard_batch                  <- shipped back in the /shard-batch body
          run_batch
            kernel_dispatch
              kernel:ids_batch (pid=...)   <- carried back in task results

Propagation is explicit at every boundary, because none of them share
memory with the caller:

* **threads** -- the active context is a thread-local stack, so executor
  threads must be entered via :func:`bind` (``contextvars`` do not follow
  ``run_in_executor`` hand-offs made before the context was set);
* **HTTP** -- :data:`TRACE_HEADER`/:data:`PARENT_HEADER` carry the ids
  downstream; the callee returns its span records in the response body and
  the caller :meth:`Trace.absorb`\\ s them, so one connected tree with a
  single ``trace_id`` spans every tier;
* **process pools** -- kernel tasks carry a ``(trace_id, parent_span_id)``
  pair; the worker builds its span record locally
  (:func:`new_span_record`) and ships it back inside the task result, so
  fork and spawn workers trace identically.

Everything no-ops when no trace is active: :func:`span` costs one
thread-local read on untraced paths, which is what keeps the serving
overhead gate (instrumented within 10% of uninstrumented) honest.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

__all__ = [
    "PARENT_HEADER",
    "TRACE_HEADER",
    "Trace",
    "activate",
    "bind",
    "context_from_headers",
    "current",
    "headers_for",
    "new_span_record",
    "span",
    "start_span",
]

#: HTTP request headers carrying the trace context downstream (names are
#: matched case-insensitively by the servers' header parser)
TRACE_HEADER = "x-trace-id"
PARENT_HEADER = "x-parent-span"

_ACTIVE = threading.local()


def _new_id() -> str:
    return os.urandom(8).hex()


def _stack() -> List[Tuple["Trace", str]]:
    stack = getattr(_ACTIVE, "stack", None)
    if stack is None:
        stack = _ACTIVE.stack = []
    return stack


def new_span_record(
    trace_id: str,
    parent_id: Optional[str],
    name: str,
    tags: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """A fresh span record dict (shared by in-process and worker-side spans).

    ``start`` is wall-clock (comparable across processes); ``duration_ms``
    is filled by whoever finishes the span from a monotonic clock.
    """
    return {
        "trace_id": trace_id,
        "span_id": _new_id(),
        "parent_id": parent_id,
        "name": name,
        "start": time.time(),
        "duration_ms": 0.0,
        "tags": dict(tags or {}),
    }


class Trace:
    """One query's span collection, shared across threads of one process."""

    __slots__ = ("trace_id", "_lock", "_spans")

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id or _new_id()
        self._lock = threading.Lock()
        self._spans: List[Dict[str, object]] = []

    def add(self, record: Dict[str, object]) -> None:
        with self._lock:
            self._spans.append(record)

    def absorb(self, records) -> None:
        """Merge span records shipped back from another tier.

        Records are re-stamped with this trace's id: the remote side
        already parented them under one of our span ids (via the request
        headers or the task context), so re-stamping keeps the tree
        connected even if a hop minted its own trace id.
        """
        if not records:
            return
        with self._lock:
            for record in records:
                if isinstance(record, dict) and "span_id" in record:
                    record = dict(record)
                    record["trace_id"] = self.trace_id
                    self._spans.append(record)

    def spans(self) -> List[Dict[str, object]]:
        with self._lock:
            return list(self._spans)

    def tree(self) -> List[Dict[str, object]]:
        """The span forest: children nested under parents, roots first.

        Spans whose parent is unknown (``None``, or recorded by a tier
        whose enclosing span never closed) surface as roots, so a partial
        trace still renders instead of vanishing.
        """
        spans = self.spans()
        nodes = {record["span_id"]: {**record, "children": []} for record in spans}
        roots: List[Dict[str, object]] = []
        for record in spans:
            node = nodes[record["span_id"]]
            parent = nodes.get(record.get("parent_id"))
            if parent is None:
                roots.append(node)
            else:
                parent["children"].append(node)
        for node in nodes.values():
            node["children"].sort(key=lambda child: child["start"])
        roots.sort(key=lambda node: node["start"])
        return roots

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(
            {"trace_id": self.trace_id, "spans": self.tree()}, indent=indent
        )


def current() -> Optional[Tuple[Trace, str]]:
    """The innermost active ``(trace, span_id)`` on this thread, or None."""
    stack = getattr(_ACTIVE, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def activate(trace: Trace, parent_id: str):
    """Enter a foreign context: spans opened inside parent under ``parent_id``.

    Used wherever a trace crosses a thread boundary explicitly -- executor
    threads via :func:`bind`, the cluster router's probe pool, tests.
    """
    stack = _stack()
    stack.append((trace, parent_id))
    try:
        yield
    finally:
        stack.pop()


def bind(context: Optional[Tuple[Trace, str]], fn):
    """Wrap ``fn`` so it runs with ``context`` active on whatever thread.

    The hand-off helper for ``run_in_executor``/thread pools: capture
    ``current()`` (or a request's root context) on the submitting thread,
    then submit ``bind(context, fn)``.  With ``context=None`` the function
    passes through untouched (zero wrapping cost on untraced paths).
    """
    if context is None:
        return fn
    trace, parent_id = context

    def wrapper(*args, **kwargs):
        with activate(trace, parent_id):
            return fn(*args, **kwargs)

    return wrapper


@contextmanager
def span(name: str, **tags: object):
    """Record one span under the active context; no-op when untraced.

    Yields the span record (or ``None`` when no trace is active) so the
    body can attach result tags: ``record["tags"]["shards"] = 3``.
    """
    ctx = current()
    if ctx is None:
        yield None
        return
    trace, parent_id = ctx
    record = new_span_record(trace.trace_id, parent_id, name, tags)
    stack = _stack()
    stack.append((trace, record["span_id"]))
    started = time.perf_counter()
    try:
        yield record
    finally:
        record["duration_ms"] = (time.perf_counter() - started) * 1000.0
        stack.pop()
        trace.add(record)


@contextmanager
def start_span(trace: Trace, name: str, parent_id: Optional[str] = None, **tags):
    """Open a span on an explicit trace (the root-span entry point)."""
    record = new_span_record(trace.trace_id, parent_id, name, tags)
    stack = _stack()
    stack.append((trace, record["span_id"]))
    started = time.perf_counter()
    try:
        yield record
    finally:
        record["duration_ms"] = (time.perf_counter() - started) * 1000.0
        stack.pop()
        trace.add(record)


def context_from_headers(headers: Optional[Dict[str, str]]):
    """``(trace_id, parent_span_id)`` from request headers, or ``None``."""
    if not headers:
        return None
    trace_id = headers.get(TRACE_HEADER)
    if not trace_id:
        return None
    return trace_id, headers.get(PARENT_HEADER) or None


def headers_for(trace: Trace, parent_id: str) -> Dict[str, str]:
    """The propagation headers for one downstream HTTP hop."""
    return {TRACE_HEADER: trace.trace_id, PARENT_HEADER: parent_id}
