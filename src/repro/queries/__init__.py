"""Query and workload generators (paper Section 5.1 and 5.4)."""

from repro.queries.generator import QueryWorkloadConfig, generate_queries, generate_stabbing_queries
from repro.queries.workload import MixedWorkload, Operation, generate_mixed_workload

__all__ = [
    "MixedWorkload",
    "Operation",
    "QueryWorkloadConfig",
    "generate_mixed_workload",
    "generate_queries",
    "generate_stabbing_queries",
]
