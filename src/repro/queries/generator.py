"""Range / stabbing query workload generation (paper Section 5.1).

The paper runs 10k random range queries per measurement.  Query extents are a
fixed percentage of the domain size (0.01% .. 1%, default 0.1%); query
positions are uniform over the domain for the real datasets and follow the
data distribution for the synthetic ones.  Stabbing queries are range queries
of zero extent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Optional, Sequence

import numpy as np

from repro.core.interval import IntervalCollection, Query

__all__ = ["QueryWorkloadConfig", "generate_queries", "generate_stabbing_queries"]


@dataclass(frozen=True)
class QueryWorkloadConfig:
    """Parameters of a range-query workload.

    Attributes:
        count: number of queries (the paper uses 10k).
        extent_fraction: query extent as a fraction of the domain length
            (the paper's default is 0.001, i.e. 0.1%).  0 yields stabbing
            queries.
        placement: ``"uniform"`` draws query start positions uniformly over
            the domain; ``"data"`` draws them from the positions of the data
            intervals (the paper does this for the synthetic datasets).
        seed: RNG seed.
    """

    count: int = 1000
    extent_fraction: float = 0.001
    placement: Literal["uniform", "data"] = "uniform"
    seed: int = 123


def generate_queries(
    collection: IntervalCollection, config: QueryWorkloadConfig = QueryWorkloadConfig()
) -> List[Query]:
    """Generate a range-query workload over the span of ``collection``."""
    if config.count <= 0:
        return []
    if not len(collection):
        return [Query(0, 0) for _ in range(config.count)]
    lo, hi = collection.span()
    domain_length = max(1, hi - lo)
    extent = int(round(config.extent_fraction * domain_length))
    rng = np.random.default_rng(config.seed)
    if config.placement == "data":
        positions = rng.choice(collection.starts, size=config.count, replace=True)
    else:
        positions = rng.integers(lo, hi + 1, size=config.count)
    queries: List[Query] = []
    for position in positions:
        start = int(position)
        end = min(start + extent, hi)
        if end < start:
            end = start
        queries.append(Query(start, end))
    return queries


def generate_stabbing_queries(
    collection: IntervalCollection, count: int = 1000, seed: int = 123
) -> List[Query]:
    """Generate a stabbing-query workload (range queries of zero extent)."""
    config = QueryWorkloadConfig(count=count, extent_fraction=0.0, seed=seed)
    return generate_queries(collection, config)
