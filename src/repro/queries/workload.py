"""Mixed query / insert / delete workloads (paper Section 5.4, Table 10).

The paper's update experiment indexes the first 90% of a dataset offline and
then runs a mixed workload of 10k range queries (0.1% extent), 5k insertions
of intervals drawn from the remaining 10%, and 1k deletions of random indexed
intervals.  :func:`generate_mixed_workload` reproduces that recipe at a
configurable scale.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.interval import Interval, IntervalCollection, Query
from repro.queries.generator import QueryWorkloadConfig, generate_queries

__all__ = ["Operation", "MixedWorkload", "generate_mixed_workload"]


class Operation(enum.Enum):
    """Kinds of operations a mixed workload contains."""

    QUERY = "query"
    INSERT = "insert"
    DELETE = "delete"


@dataclass(frozen=True)
class MixedWorkload:
    """A pre-loaded collection plus a shuffled stream of operations.

    Attributes:
        preload: intervals to index before running the workload (the 90%).
        operations: sequence of ``(Operation, payload)`` pairs where the
            payload is a :class:`Query`, an :class:`Interval` to insert, or an
            interval id to delete.
    """

    preload: IntervalCollection
    operations: Tuple[Tuple[Operation, Union[Query, Interval, int]], ...]

    @property
    def counts(self) -> dict:
        """Number of operations per kind."""
        result = {op: 0 for op in Operation}
        for op, _ in self.operations:
            result[op] += 1
        return result


def generate_mixed_workload(
    collection: IntervalCollection,
    num_queries: int = 1000,
    num_insertions: int = 500,
    num_deletions: int = 100,
    query_extent_fraction: float = 0.001,
    preload_fraction: float = 0.9,
    shuffle: bool = True,
    seed: int = 99,
) -> MixedWorkload:
    """Build a Table 10-style mixed workload from ``collection``.

    The first ``preload_fraction`` of the (shuffled) collection becomes the
    preload; insertions are drawn from the remainder; deletions pick random
    ids from the preload.
    """
    rng = np.random.default_rng(seed)
    shuffled = collection.shuffled(seed=seed)
    split = int(len(shuffled) * preload_fraction)
    preload = shuffled.subset(np.arange(split))
    remainder = shuffled.subset(np.arange(split, len(shuffled)))

    queries = generate_queries(
        preload,
        QueryWorkloadConfig(
            count=num_queries, extent_fraction=query_extent_fraction, seed=seed
        ),
    )
    operations: List[Tuple[Operation, Union[Query, Interval, int]]] = [
        (Operation.QUERY, q) for q in queries
    ]

    num_insertions = min(num_insertions, len(remainder))
    for position in range(num_insertions):
        operations.append((Operation.INSERT, remainder[position]))

    if len(preload):
        delete_ids = rng.choice(preload.ids, size=min(num_deletions, len(preload)), replace=False)
        operations.extend((Operation.DELETE, int(sid)) for sid in delete_ids)

    if shuffle:
        order = rng.permutation(len(operations))
        operations = [operations[i] for i in order]
    return MixedWorkload(preload=preload, operations=tuple(operations))
