"""The serving subsystem: the layers between clients and the index.

Four cooperating parts turn the engine into something that can hold up
under concurrent traffic (see the README's "Serving" section):

* **epoch-based read snapshots** -- queries pin one immutable
  ``(plan, shards, journal)`` generation, so maintenance publishes new
  partition state atomically instead of mutating under readers
  (:class:`repro.engine.sharded.Epoch`);
* **replicated shards** -- per-shard replica sets with routed probes and
  transparent failover (:mod:`repro.engine.replication`);
* an **admission-controlled asyncio query server** -- JSON-over-HTTP with a
  bounded in-flight queue (503 backpressure), request batching into
  ``store.run_batch`` and graceful drain (:mod:`repro.serve.server`);
* an **invalidation-aware result cache** -- LRU keyed on normalized query +
  content generation, so updates and maintenance invalidate by construction
  (:mod:`repro.serve.cache`), with an optional stale-while-revalidate mode;
* **standing-query push** -- ``/subscribe`` + ``/poll-deltas`` over the
  same server, backed by :mod:`repro.stream`'s delta engine;
  :class:`StreamClient` folds the delta batches client-side.
"""

from repro.serve.cache import (
    CacheStats,
    ResultCache,
    StaleResult,
    normalize_query_key,
    resolve_cache,
)
from repro.serve.client import (
    ServeClient,
    ServerError,
    ServerOverloaded,
    ServerUnavailableError,
    StreamClient,
)
from repro.serve.server import QueryServer, ServerHandle, start_server_thread

__all__ = [
    "CacheStats",
    "QueryServer",
    "ResultCache",
    "ServeClient",
    "ServerError",
    "ServerHandle",
    "ServerOverloaded",
    "ServerUnavailableError",
    "StaleResult",
    "StreamClient",
    "normalize_query_key",
    "resolve_cache",
    "start_server_thread",
]
