"""Invalidation-aware result cache: LRU keyed on query + content generation.

The serving layer's cache never runs an invalidation protocol.  Every entry
is stamped with the store's ``result_generation()`` token at fill time --
a monotonic counter the engine bumps on every insert/delete and every epoch
publication (:attr:`repro.engine.sharded.ShardedIndex.result_generation`) --
and a lookup only hits when the stamp still equals the *current* generation.
Updates and maintenance therefore invalidate cached answers *by
construction*: the generation moves, every older entry turns into a miss on
its next touch and is dropped in place (``invalidated`` in the stats), and
nothing ever has to enumerate which queries an update affected.

The cache is value-agnostic -- the query server stores pre-encoded response
bodies so a hit costs one dict probe plus a socket write -- and thread-safe:
server worker threads and the asyncio loop share one instance under a single
lock (every operation is O(1), so the lock is never held across a probe).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Optional, Tuple

__all__ = [
    "CacheStats",
    "ResultCache",
    "StaleResult",
    "normalize_query_key",
    "resolve_cache",
]


class StaleResult:
    """A stale-generation entry served under stale-while-revalidate.

    Returned (instead of the raw value) by :meth:`ResultCache.get` when the
    cache runs in SWR mode and the entry's generation stamp is behind the
    current one: the caller serves ``value`` immediately and schedules a
    background recompute to refresh the entry.  Each entry is served stale
    at most once per generation -- the second lookup at the same current
    generation misses, so a failed revalidation cannot pin a stale answer.
    """

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value


def normalize_query_key(
    start: int, end: int, kind: str = "ids"
) -> Tuple[str, int, int]:
    """Canonical cache key for one range/stabbing query.

    ``kind`` separates result shapes over the same range (``"ids"``,
    ``"count"``, ``"exists"``); a stabbing query at ``p`` normalises to the
    degenerate range ``(p, p)``, so the point and range forms share entries.
    """
    return (kind, int(start), int(end))


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of one :class:`ResultCache`.

    Attributes:
        hits: lookups answered from a current-generation entry.
        misses: lookups that found nothing usable (cold + invalidated).
        invalidated: misses caused specifically by a stale generation stamp
            (the entry existed but an update/epoch moved the generation).
        evictions: entries dropped by the LRU capacity bound.
        size: entries currently held.
        capacity: the LRU bound.
        stale_served: lookups answered with a stale body under
            stale-while-revalidate (counted as neither hit nor miss).
        ttl_expired: misses caused specifically by the entry's age exceeding
            the cache TTL (the generation may still have been current).
    """

    hits: int
    misses: int
    invalidated: int
    evictions: int
    size: int
    capacity: int
    stale_served: int = 0
    ttl_expired: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class ResultCache:
    """A thread-safe LRU of query results stamped with a content generation.

    Args:
        capacity: maximum entries held; 0 disables the cache entirely
            (every lookup misses, nothing is stored), which is how the
            server's ``--cache-size 0`` and the uncached benchmark legs run.
        stale_while_revalidate: when True, a lookup that finds a
            stale-generation entry serves its body once (wrapped in
            :class:`StaleResult`, so the caller schedules a background
            recompute) instead of dropping it -- trading one
            generation-stale answer for not paying recompute latency on the
            first post-update touch of a hot query.
        ttl: optional wall-clock bound (seconds) on entry age for
            time-sensitive consumers.  An entry older than ``ttl`` misses
            and is dropped even when its generation stamp is still current,
            and an expired entry is never served stale under SWR -- TTL
            composes with (and overrides) both generation invalidation and
            stale-while-revalidate.  ``None`` (the default) disables the
            bound.
        clock: monotonic time source for TTL bookkeeping (tests override).
    """

    __slots__ = (
        "_capacity",
        "_entries",
        "_lock",
        "_hits",
        "_misses",
        "_invalidated",
        "_evictions",
        "_swr",
        "_stale_served",
        "_ttl",
        "_ttl_expired",
        "_clock",
    )

    #: sentinel distinguishing "miss" from a cached falsy value
    MISS = object()

    def __init__(
        self,
        capacity: int = 1024,
        stale_while_revalidate: bool = False,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"cache ttl must be > 0 seconds, got {ttl}")
        self._capacity = capacity
        # entry: (generation stamp, value, generation the entry was last
        # served stale at -- None until SWR touches it, fill timestamp)
        self._entries: (
            "OrderedDict[Hashable, Tuple[object, object, Optional[object], float]]"
        ) = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._invalidated = 0
        self._evictions = 0
        self._swr = stale_while_revalidate
        self._stale_served = 0
        self._ttl = ttl
        self._ttl_expired = 0
        self._clock = clock

    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def enabled(self) -> bool:
        """False for the capacity-0 pass-through configuration."""
        return self._capacity > 0

    @property
    def hits(self) -> int:
        """Lifetime hit count (lock-free read: a gauge, not an invariant)."""
        return self._hits

    @property
    def stale_while_revalidate(self) -> bool:
        """True when stale entries are served once while recomputing."""
        return self._swr

    @property
    def stale_served(self) -> int:
        """Lifetime stale-serve count (lock-free gauge read)."""
        return self._stale_served

    @property
    def ttl(self) -> Optional[float]:
        """The entry-age bound in seconds (``None``: no TTL)."""
        return self._ttl

    @property
    def misses(self) -> int:
        """Lifetime miss count (lock-free gauge read)."""
        return self._misses

    @property
    def invalidated(self) -> int:
        """Lifetime generation-invalidation count (lock-free gauge read)."""
        return self._invalidated

    @property
    def evictions(self) -> int:
        """Lifetime capacity-eviction count (lock-free gauge read)."""
        return self._evictions

    @property
    def ttl_expired(self) -> int:
        """Lifetime TTL-expiry count (lock-free gauge read)."""
        return self._ttl_expired

    def register_metrics(self, registry) -> None:
        """Expose this cache on a :class:`~repro.obs.MetricsRegistry`.

        Everything is registered as *pull* metrics reading the existing
        counters at scrape time, so the cache hot path pays nothing for the
        registry -- the counters it already maintained are the metrics.
        """
        registry.counter_function(
            "repro_cache_hits_total", "Result-cache hits.", lambda: self._hits
        )
        registry.counter_function(
            "repro_cache_misses_total", "Result-cache misses.", lambda: self._misses
        )
        registry.counter_function(
            "repro_cache_invalidated_total",
            "Entries dropped because their generation stamp went stale.",
            lambda: self._invalidated,
        )
        registry.counter_function(
            "repro_cache_evictions_total",
            "Entries evicted by the LRU capacity bound.",
            lambda: self._evictions,
        )
        registry.counter_function(
            "repro_cache_stale_served_total",
            "Stale bodies served under stale-while-revalidate.",
            lambda: self._stale_served,
        )
        registry.counter_function(
            "repro_cache_ttl_expired_total",
            "Entries dropped by the TTL age bound.",
            lambda: self._ttl_expired,
        )
        registry.gauge_function(
            "repro_cache_size", "Entries currently cached.", lambda: len(self._entries)
        )
        registry.gauge_function(
            "repro_cache_capacity",
            "Configured cache capacity (0: disabled).",
            lambda: self._capacity,
        )

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    def get(self, key: Hashable, generation: Hashable) -> object:
        """The cached value, :attr:`MISS`, or a :class:`StaleResult`.

        A hit requires the entry's generation stamp to equal ``generation``
        (the store's *current* token, read by the caller just before the
        lookup; the cluster router stamps with a tuple of per-shard tokens
        -- any hashable equality-comparable stamp works).  A stale entry normally counts as an invalidation, is
        dropped, and misses; under stale-while-revalidate it is instead
        served once per generation as a :class:`StaleResult` -- the caller
        serves the wrapped body and schedules the recompute that will
        :meth:`put` a fresh entry.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return self.MISS
            stamped, value, served_stale_at, stamped_at = entry
            if self._ttl is not None and self._clock() - stamped_at > self._ttl:
                # too old for a time-sensitive consumer regardless of the
                # generation; expired entries are not SWR-eligible either
                del self._entries[key]
                self._ttl_expired += 1
                self._misses += 1
                return self.MISS
            if stamped != generation:
                if self._swr and served_stale_at != generation:
                    # serve the stale body exactly once per generation; the
                    # marker makes the next same-generation lookup miss, so
                    # a lost revalidation cannot pin this answer forever
                    self._entries[key] = (stamped, value, generation, stamped_at)
                    self._entries.move_to_end(key)
                    self._stale_served += 1
                    return StaleResult(value)
                # an update/epoch moved the generation: the entry is dead by
                # construction -- drop it so one hot query cannot pin a
                # stale answer in memory
                del self._entries[key]
                self._invalidated += 1
                self._misses += 1
                return self.MISS
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, generation: Hashable, value: object) -> None:
        """Store ``value`` under ``key`` stamped with ``generation``.

        Callers must read the generation *before* running the query they are
        caching: stamping with a post-query read could mask an update that
        landed mid-query, caching a pre-update answer under a post-update
        stamp.
        """
        if self._capacity == 0:
            return
        with self._lock:
            self._entries[key] = (generation, value, None, self._clock())
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                invalidated=self._invalidated,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self._capacity,
                stale_served=self._stale_served,
                ttl_expired=self._ttl_expired,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        stats = self.stats()
        return (
            f"ResultCache(size={stats.size}/{stats.capacity}, "
            f"hits={stats.hits}, misses={stats.misses}, "
            f"invalidated={stats.invalidated})"
        )


def resolve_cache(spec: "ResultCache | int | None") -> Optional[ResultCache]:
    """Turn a cache spec into a :class:`ResultCache` (or ``None``).

    ``None`` means the server default (a 1024-entry cache); an int is a
    capacity (0 disables caching); an instance passes through.
    """
    if spec is None:
        return ResultCache()
    if isinstance(spec, ResultCache):
        return spec
    if isinstance(spec, bool) or not isinstance(spec, int):
        raise TypeError(f"cache spec must be a ResultCache, int or None, got {spec!r}")
    return ResultCache(capacity=spec)
