"""A tiny stdlib client for the query server (tests, benchmarks, examples).

One :class:`ServeClient` wraps one keep-alive ``http.client.HTTPConnection``;
it is not thread-safe -- give each client thread its own instance (the
connection is the unit of HTTP pipelining, and the benchmarks measure
per-connection request/response round-trips on purpose).

:class:`StreamClient` layers the standing-query protocol on top: it
subscribes, keeps the live result set locally by folding delta batches from
``/poll-deltas`` (long-poll or chunked streaming), and transparently
resyncs when the server's bounded delta log could no longer replay the gap.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import ReproError

__all__ = [
    "ServeClient",
    "ServerError",
    "ServerOverloaded",
    "ServerUnavailableError",
    "StreamClient",
]


class ServerError(RuntimeError):
    """A non-2xx response from the query server."""

    def __init__(self, status: int, payload: Dict[str, object]):
        super().__init__(f"server answered {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServerOverloaded(ServerError):
    """503: admission control rejected the request (back off and retry)."""


class ServerUnavailableError(ReproError, ConnectionError):
    """The server could not be reached (after the client's bounded retries).

    Replaces the raw ``OSError``/``http.client`` exceptions the transport
    produces; the client's socket has already been torn down when this is
    raised.  Subclasses ``ConnectionError`` so existing callers that caught
    connection failures keep working.
    """

    def __init__(self, host: str, port: int, attempts: int, cause: Exception):
        super().__init__(
            f"query server {host}:{port} unavailable after {attempts} "
            f"attempt{'s' if attempts != 1 else ''}: {cause}"
        )
        self.host = host
        self.port = port
        self.attempts = attempts
        self.cause = cause


class ServeClient:
    """JSON-over-HTTP client for one :class:`repro.serve.server.QueryServer`.

    Args:
        host / port: the server address (see ``ServerHandle.port``).
        timeout: per-request socket timeout in seconds (long-poll requests
            stretch it to cover their server-side wait).
        retries: connection attempts per idempotent request before giving
            up with :class:`ServerUnavailableError` (the socket is torn
            down first).  Non-idempotent updates never auto-retry -- the
            first attempt may have been applied before the connection died.
        backoff: base of the jittered exponential backoff between retries
            (``backoff * 2**n`` seconds plus up to 50% jitter, capped at
            ``backoff_cap``).
        retry_overloaded: also retry 503 admission rejections, honouring
            the server's ``Retry-After`` hint.  Off by default: admission
            control *wants* the caller to decide (shed load, try another
            replica); long-lived consumers like :class:`StreamClient` turn
            it on.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 30.0,
        *,
        retries: int = 2,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        retry_overloaded: bool = False,
    ):
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retries = max(0, int(retries))
        self._backoff = max(0.0, float(backoff))
        self._backoff_cap = max(self._backoff, float(backoff_cap))
        self._retry_overloaded = bool(retry_overloaded)
        self._connection: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    #: paths safe to re-send after a dropped keep-alive connection; updates
    #: (/insert, /delete, /maintain) are NOT here -- the first attempt may
    #: have been applied before the connection died, and a blind re-send
    #: would double-apply it
    _RETRYABLE_PATHS = ("/query", "/batch", "/stats", "/health", "/poll-deltas")

    def _sleep_backoff(self, attempt: int, floor: float = 0.0) -> None:
        """Jittered exponential backoff before retry number ``attempt``."""
        delay = min(self._backoff_cap, self._backoff * (2 ** attempt))
        delay = max(floor, delay)
        if delay > 0:
            # up to 50% jitter de-synchronises clients retrying in lockstep
            time.sleep(delay * (1.0 + random.random() * 0.5))

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
        *,
        timeout: Optional[float] = None,
        headers: Optional[Dict[str, str]] = None,
        raw_body: bool = False,
    ) -> Dict[str, object]:
        body = json.dumps(payload).encode() if payload is not None else None
        request_headers = {"Content-Type": "application/json"} if body else {}
        if headers:
            request_headers.update(headers)
        retryable = method == "GET" or any(
            path.split("?", 1)[0] == prefix for prefix in self._RETRYABLE_PATHS
        )
        request_timeout = timeout if timeout is not None else self._timeout
        # connection resets retry only for idempotent paths; updates
        # (/insert, /delete, /maintain) fail fast -- the first attempt may
        # have been applied before the connection died, and a blind
        # re-send would double-apply it
        attempts = (1 + self._retries) if retryable else 1
        attempt = 0
        while True:
            if self._connection is None:
                self._connection = http.client.HTTPConnection(
                    self._host, self._port, timeout=request_timeout
                )
            elif self._connection.timeout != request_timeout:
                # per-request timeout override (long-polls stretch it)
                self._connection.timeout = request_timeout
                if self._connection.sock is not None:
                    self._connection.sock.settimeout(request_timeout)
            try:
                self._connection.request(
                    method, path, body=body, headers=request_headers
                )
                response = self._connection.getresponse()
                raw = response.read()
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                # a dropped keep-alive connection (server drained, idle
                # timeout, restart): tear the socket down, back off, retry
                # within the bound -- then surface a typed error, never a
                # raw OSError with a half-open socket behind it
                self.close()
                attempt += 1
                if attempt >= attempts:
                    raise ServerUnavailableError(
                        self._host, self._port, attempt, exc
                    ) from exc
                self._sleep_backoff(attempt - 1)
                continue
            if raw_body:
                if response.status >= 400:
                    raise ServerError(response.status, {"error": raw.decode()})
                return raw.decode()
            decoded = json.loads(raw) if raw else {}
            if response.status == 503:
                if self._retry_overloaded and attempt + 1 < attempts:
                    attempt += 1
                    retry_after = decoded.get("retry_after")
                    floor = float(retry_after) if retry_after else 0.0
                    self._sleep_backoff(attempt - 1, floor=floor)
                    continue
                raise ServerOverloaded(response.status, decoded)
            if response.status >= 400:
                raise ServerError(response.status, decoded)
            return decoded

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
        *,
        timeout: Optional[float] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Dict[str, object]:
        """One raw request to an arbitrary endpoint (cluster extensions).

        Retry semantics follow the path: only the idempotent read paths in
        ``_RETRYABLE_PATHS`` (plus any GET) are re-sent after a dropped
        connection.  ``headers`` adds request headers (the cluster router
        uses this to propagate trace context).
        """
        return self._request(method, path, payload, timeout=timeout, headers=headers)

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    def query(
        self,
        start: int,
        end: int,
        count_only: bool = False,
        *,
        relation: Optional[str] = None,
        stats: bool = False,
    ) -> Dict[str, object]:
        """One range query; ``{"ids": [...], "count": n}`` (or just count).

        ``relation`` restricts results to one Allen relation with the query
        range; ``stats`` adds the per-query ``QueryStats`` counters.
        """
        payload: Dict[str, object] = {
            "start": start,
            "end": end,
            "count_only": count_only,
        }
        if relation is not None:
            payload["relation"] = relation
        if stats:
            payload["stats"] = True
        return self._request("POST", "/query", payload)

    def stab(self, point: int) -> Dict[str, object]:
        """One stabbing query."""
        return self._request("POST", "/query", {"stab": point})

    def batch(
        self,
        pairs: Sequence[Tuple[int, int]],
        count_only: bool = False,
        *,
        relation: Optional[str] = None,
        stats: bool = False,
    ) -> List[Dict[str, object]]:
        """A whole workload in one request; per-query result dicts.

        ``relation``/``stats`` apply to every query in the batch.
        """
        payload: Dict[str, object] = {
            "queries": [[s, e] for s, e in pairs],
            "count_only": count_only,
        }
        if relation is not None:
            payload["relation"] = relation
        if stats:
            payload["stats"] = True
        response = self._request("POST", "/batch", payload)
        return response["results"]

    def insert(self, interval_id: int, start: int, end: int) -> Dict[str, object]:
        return self._request(
            "POST", "/insert", {"id": interval_id, "start": start, "end": end}
        )

    def delete(self, interval_id: int) -> Dict[str, object]:
        return self._request("POST", "/delete", {"id": interval_id})

    def maintain(self, force: bool = False) -> Dict[str, object]:
        return self._request("POST", "/maintain", {"force": force})

    def stats(self) -> Dict[str, object]:
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """The server's Prometheus text exposition, verbatim (``/metrics``)."""
        return self._request("GET", "/metrics", raw_body=True)

    def slow_queries(self, limit: Optional[int] = None) -> Dict[str, object]:
        """The server's slow-query log (``/slow-queries``)."""
        path = f"/slow-queries?limit={limit}" if limit is not None else "/slow-queries"
        return self._request("GET", path)

    def health(self) -> Dict[str, object]:
        return self._request("GET", "/health")

    # ------------------------------------------------------------------ #
    # standing queries (raw protocol; StreamClient wraps these)
    # ------------------------------------------------------------------ #
    def subscribe(
        self,
        start: Optional[int] = None,
        end: Optional[int] = None,
        *,
        stab: Optional[int] = None,
        relation: Optional[str] = None,
        min_duration: int = 0,
        max_duration: Optional[int] = None,
        filter: Optional[Dict[str, object]] = None,
        subscription_id: Optional[int] = None,
    ) -> Dict[str, object]:
        """Register a standing query (or resync one via ``subscription_id``).

        ``filter`` is a JSON predicate spec (see :mod:`repro.stream.filters`)
        compiled server-side.  Returns ``{"subscription_id", "generation",
        "ids", "count"}`` -- the consistent snapshot deltas are folded onto.
        """
        if subscription_id is not None:
            return self._request(
                "POST", "/subscribe", {"subscription_id": subscription_id}
            )
        payload: Dict[str, object] = {}
        if stab is not None:
            payload["stab"] = stab
        else:
            payload["start"] = start
            payload["end"] = end
        if relation is not None:
            payload["relation"] = relation
        if min_duration:
            payload["min_duration"] = min_duration
        if max_duration is not None:
            payload["max_duration"] = max_duration
        if filter is not None:
            payload["filter"] = filter
        return self._request("POST", "/subscribe", payload)

    def unsubscribe(self, subscription_id: int) -> Dict[str, object]:
        return self._request(
            "POST", "/unsubscribe", {"subscription_id": subscription_id}
        )

    def poll_deltas(
        self, subscription_id: int, after: int, timeout: float = 30.0
    ) -> Dict[str, object]:
        """One long-poll round against a subscription's delta log.

        The socket timeout is stretched past the requested long-poll wait,
        so a quiet subscription is not misread as a dead server.
        """
        return self._request(
            "POST",
            "/poll-deltas",
            {"subscription_id": subscription_id, "after": after, "timeout": timeout},
            timeout=max(self._timeout, timeout + 10.0),
        )


class StreamClient:
    """A standing-query consumer that keeps its result set live.

    Wraps one :class:`ServeClient`: :meth:`subscribe` installs the standing
    query and stores its snapshot locally; each :meth:`poll` (long-poll) or
    :meth:`stream` (chunked) round folds the delivered delta batches into
    the local id set and advances the acked generation.  When the server
    answers ``resync_required`` -- its bounded delta log was coalesced or
    truncated past our ack, or the subscription is gone after a server
    restart with a fresh manager -- the client re-snapshots transparently
    and bumps :attr:`resyncs`.

    Not thread-safe (same contract as :class:`ServeClient`).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 60.0,
        *,
        retries: int = 2,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
    ) -> None:
        self._host = host
        self._port = port
        # a stream consumer is long-lived and idempotent end to end (polls
        # re-send the last ack), so it opts into 503 retries too
        self._client = ServeClient(
            host,
            port,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            backoff_cap=backoff_cap,
            retry_overloaded=True,
        )
        self._subscription_id: Optional[int] = None
        self._generation = -1
        self._ids: set = set()
        self._resyncs = 0
        # the subscribe arguments, kept for re-subscription after the
        # server forgot us (restart with a fresh manager)
        self._spec: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------ #
    @property
    def subscription_id(self) -> Optional[int]:
        return self._subscription_id

    @property
    def generation(self) -> int:
        """The last-acked generation (what the next poll sends as ``after``)."""
        return self._generation

    @property
    def resyncs(self) -> int:
        """Snapshot replacements forced by log truncation/loss."""
        return self._resyncs

    def ids(self) -> frozenset:
        """The standing query's current result set (locally maintained)."""
        return frozenset(self._ids)

    def close(self) -> None:
        self._client.close()

    def __enter__(self) -> "StreamClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def subscribe(
        self,
        start: Optional[int] = None,
        end: Optional[int] = None,
        *,
        stab: Optional[int] = None,
        relation: Optional[str] = None,
        min_duration: int = 0,
        max_duration: Optional[int] = None,
        filter: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        """Install the standing query and adopt its snapshot."""
        self._spec = {
            "start": start,
            "end": end,
            "stab": stab,
            "relation": relation,
            "min_duration": min_duration,
            "max_duration": max_duration,
            "filter": filter,
        }
        response = self._client.subscribe(
            start,
            end,
            stab=stab,
            relation=relation,
            min_duration=min_duration,
            max_duration=max_duration,
            filter=filter,
        )
        self._adopt(response)
        return response

    def unsubscribe(self) -> Dict[str, object]:
        if self._subscription_id is None:
            raise RuntimeError("not subscribed")
        response = self._client.unsubscribe(self._subscription_id)
        self._subscription_id = None
        return response

    def poll(self, timeout: float = 30.0) -> Dict[str, object]:
        """One long-poll round; folds any deltas, resyncs when required.

        Returns the server's poll body (after folding); a transparent
        resync surfaces as ``{"resynced": True, ...snapshot fields}``.
        """
        if self._subscription_id is None:
            raise RuntimeError("not subscribed")
        try:
            response = self._client.poll_deltas(
                self._subscription_id, after=self._generation, timeout=timeout
            )
        except ServerError as exc:
            if exc.status == 404 and exc.payload.get("resync_required"):
                return self._resync()
            raise
        if response.get("resync_required"):
            return self._resync()
        self._apply(response)
        return response

    def stream(self, timeout: float = 30.0) -> Iterator[Dict[str, object]]:
        """Yield delta batches live from the chunked streaming endpoint.

        One streaming request lasts up to ``timeout`` seconds (capped by
        the server's ``poll_timeout``); each yielded batch has already been
        folded into :meth:`ids`.  Ends early on ``resync_required`` (after
        transparently resyncing, yielding the resync event last).
        """
        if self._subscription_id is None:
            raise RuntimeError("not subscribed")
        connection = http.client.HTTPConnection(
            self._host, self._port, timeout=timeout + 10.0
        )
        body = json.dumps(
            {
                "subscription_id": self._subscription_id,
                "after": self._generation,
                "timeout": timeout,
                "stream": True,
            }
        ).encode()
        try:
            try:
                connection.request(
                    "POST",
                    "/poll-deltas",
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                # the dedicated streaming connection has no retry loop (the
                # caller re-enters stream() with the preserved ack); still
                # surface the same typed error the request path does
                raise ServerUnavailableError(self._host, self._port, 1, exc) from exc
            if response.status >= 400:
                raw = response.read()
                decoded = json.loads(raw) if raw else {}
                raise ServerError(response.status, decoded)
            while True:
                line = response.readline()
                if not line:
                    break
                event = json.loads(line)
                if event.get("resync_required"):
                    yield self._resync()
                    break
                self._apply(event)
                yield event
        finally:
            connection.close()

    # ------------------------------------------------------------------ #
    def _apply(self, response: Dict[str, object]) -> None:
        for delta in response.get("deltas", ()):
            self._ids.difference_update(delta.get("removed", ()))
            self._ids.update(delta.get("added", ()))
        self._generation = max(self._generation, int(response.get("generation", -1)))

    def _adopt(self, response: Dict[str, object]) -> None:
        self._subscription_id = int(response["subscription_id"])
        self._generation = int(response["generation"])
        self._ids = set(response["ids"])

    def _resync(self) -> Dict[str, object]:
        """Replace the local state with a fresh server-side snapshot.

        Tries an in-place resync of the existing subscription first; when
        the server no longer knows it (restarted with a fresh manager),
        falls back to re-subscribing with the original query.
        """
        self._resyncs += 1
        try:
            response = self._client.subscribe(subscription_id=self._subscription_id)
        except ServerError as exc:
            if exc.status != 404 or self._spec is None:
                raise
            spec = self._spec
            response = self._client.subscribe(
                spec["start"],
                spec["end"],
                stab=spec["stab"],
                relation=spec["relation"],
                min_duration=spec["min_duration"],
                max_duration=spec["max_duration"],
                filter=spec.get("filter"),
            )
        self._adopt(response)
        result = dict(response)
        result["resynced"] = True
        return result
