"""A tiny stdlib client for the query server (tests, benchmarks, examples).

One :class:`ServeClient` wraps one keep-alive ``http.client.HTTPConnection``;
it is not thread-safe -- give each client thread its own instance (the
connection is the unit of HTTP pipelining, and the benchmarks measure
per-connection request/response round-trips on purpose).
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ServeClient", "ServerError", "ServerOverloaded"]


class ServerError(RuntimeError):
    """A non-2xx response from the query server."""

    def __init__(self, status: int, payload: Dict[str, object]):
        super().__init__(f"server answered {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServerOverloaded(ServerError):
    """503: admission control rejected the request (back off and retry)."""


class ServeClient:
    """JSON-over-HTTP client for one :class:`repro.serve.server.QueryServer`.

    Args:
        host / port: the server address (see ``ServerHandle.port``).
        timeout: per-request socket timeout in seconds.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8080, timeout: float = 30.0):
        self._host = host
        self._port = port
        self._timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    #: paths safe to re-send after a dropped keep-alive connection; updates
    #: (/insert, /delete, /maintain) are NOT here -- the first attempt may
    #: have been applied before the connection died, and a blind re-send
    #: would double-apply it
    _RETRYABLE_PATHS = ("/query", "/batch", "/stats", "/health")

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
        body = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        retryable = method == "GET" or any(
            path.split("?", 1)[0] == prefix for prefix in self._RETRYABLE_PATHS
        )
        try:
            self._connection.request(method, path, body=body, headers=headers)
            response = self._connection.getresponse()
            raw = response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            # a dropped keep-alive connection (server drained, idle timeout)
            # is re-established once for read-only requests; non-idempotent
            # updates propagate the failure -- the caller must decide
            self.close()
            if not retryable:
                raise
            self._connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
            self._connection.request(method, path, body=body, headers=headers)
            response = self._connection.getresponse()
            raw = response.read()
        decoded = json.loads(raw) if raw else {}
        if response.status == 503:
            raise ServerOverloaded(response.status, decoded)
        if response.status >= 400:
            raise ServerError(response.status, decoded)
        return decoded

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    def query(self, start: int, end: int, count_only: bool = False) -> Dict[str, object]:
        """One range query; ``{"ids": [...], "count": n}`` (or just count)."""
        return self._request(
            "POST", "/query", {"start": start, "end": end, "count_only": count_only}
        )

    def stab(self, point: int) -> Dict[str, object]:
        """One stabbing query."""
        return self._request("POST", "/query", {"stab": point})

    def batch(
        self, pairs: Sequence[Tuple[int, int]], count_only: bool = False
    ) -> List[Dict[str, object]]:
        """A whole workload in one request; per-query result dicts."""
        response = self._request(
            "POST",
            "/batch",
            {"queries": [[s, e] for s, e in pairs], "count_only": count_only},
        )
        return response["results"]

    def insert(self, interval_id: int, start: int, end: int) -> Dict[str, object]:
        return self._request(
            "POST", "/insert", {"id": interval_id, "start": start, "end": end}
        )

    def delete(self, interval_id: int) -> Dict[str, object]:
        return self._request("POST", "/delete", {"id": interval_id})

    def maintain(self, force: bool = False) -> Dict[str, object]:
        return self._request("POST", "/maintain", {"force": force})

    def stats(self) -> Dict[str, object]:
        return self._request("GET", "/stats")

    def health(self) -> Dict[str, object]:
        return self._request("GET", "/health")
