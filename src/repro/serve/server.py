"""The asyncio query server: JSON-over-HTTP serving for an IntervalStore.

Stdlib-only (``asyncio`` + hand-rolled HTTP/1.1 with keep-alive), because the
serving loop is part of the reproduction: the point is to measure what the
layers above the index -- admission control, batching, caching -- cost and
buy, not to benchmark a web framework.

Request lifecycle::

    client -> admission control -> result cache -> batching queue -> store
                   |                    |                               |
                 503 when          hit: respond with the         run_batch in a
               max_pending         cached pre-encoded body       worker thread,
              queries queued       (generation-checked)          fill the cache

* **Admission control**: at most ``max_pending`` query requests may be
  admitted (queued or executing) at once; beyond that the server answers
  ``503`` with a ``Retry-After`` hint instead of queueing unboundedly --
  under overload it degrades by rejecting, never by falling over.
* **Batching**: admitted queries land on one queue; a batcher task drains
  greedily (up to ``max_batch``, optionally waiting ``batch_window`` seconds
  for stragglers) and answers each drained batch with a single
  ``store.run_batch`` call in a worker thread, so concurrent clients
  naturally coalesce while a lone client never waits on a timer.
* **Result cache**: hits are served straight off the event loop as
  pre-encoded bodies; entries are stamped with the store's
  ``result_generation()`` and go stale *by construction* when an update or
  maintenance pass moves the generation (:mod:`repro.serve.cache`).
* **Graceful drain**: ``stop()`` flips the server into draining mode (new
  work is rejected with 503), waits for admitted requests to finish, then
  closes the listener.

Endpoints (all JSON):

===========================  ==================================================
``GET/POST /query``          one range/stabbing query; ``start``/``end``
                             (+ ``count_only``) as query-string or JSON body
``POST /batch``              ``{"queries": [[s, e], ...], "count_only": bool}``
``POST /insert``             ``{"id": i, "start": s, "end": e}``
``POST /delete``             ``{"id": i}``
``POST /maintain``           one maintenance pass (``{"force": bool}``)
``POST /subscribe``          register a standing query (``start``/``end`` or
                             ``stab``, optional ``relation``,
                             ``min_duration``, ``max_duration``); with
                             ``subscription_id``: resync an existing one
``POST /unsubscribe``        ``{"subscription_id": i}``
``GET/POST /poll-deltas``    long-poll one subscription's delta log
                             (``subscription_id``, ``after`` = last-acked
                             generation, ``timeout`` seconds; ``stream``
                             switches to the chunked variant when the
                             server enables it)
``GET /stats``               serving counters, cache stats, epoch + replica
                             health, subscription gauges, latency quantiles
                             (every number sourced from the metrics registry)
``GET /metrics``             the same registry in Prometheus text format
``GET /slow-queries``        the slow-query log: span trees of completed
                             requests over the configured threshold
``GET /health``              liveness (``200``, or ``503`` while draining)
===========================  ==================================================

``/query`` and ``/batch`` also accept ``relation`` (an Allen relation name,
see :class:`repro.core.allen.AllenRelation`) and ``stats`` (truthy: include
per-query :class:`~repro.core.base.QueryStats` in the response).

Standing queries ride the same store hooks as the cache: a
:class:`~repro.stream.deltas.StandingQueryManager` observes inserts/deletes,
routes each to the affected subscriptions through an interval-indexed
registry, and the server long-polls (or chunk-streams) the per-subscription
delta logs with bounded queues, net-effect coalescing under backpressure and
an explicit resync signal -- see :mod:`repro.stream`.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.core.base import QueryStats
from repro.core.errors import DurabilityDegradedError, ReproError
from repro.core.interval import Interval, Query
from repro.engine.store import IntervalStore
from repro.obs import MetricsRegistry, SlowQueryLog, global_registry, tracing
from repro.serve.cache import (
    ResultCache,
    StaleResult,
    normalize_query_key,
    resolve_cache,
)
from repro.stream import StandingQueryManager, UnknownSubscriptionError, parse_relation

__all__ = ["QueryServer", "ServerHandle", "start_server_thread"]

#: sentinel shutting the batcher task down
_SHUTDOWN = object()

#: largest request body the server will buffer; one rogue Content-Length
#: must not bypass admission control by exhausting memory (8 MiB holds a
#: ~300k-query batch request -- far past any sane client)
MAX_BODY_BYTES = 8 * 1024 * 1024


class _Reject(Exception):
    """Internal: turn a request into an HTTP error response."""

    def __init__(self, status: int, message: str, retry_after: Optional[int] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


#: endpoint -> latency-histogram operation label; everything else is "other"
_ENDPOINT_OPS = {
    "/query": "query",
    "/batch": "batch",
    "/shard-batch": "shard_batch",
    "/insert": "update",
    "/delete": "update",
    "/maintain": "update",
}

#: endpoints whose completed requests feed the slow-query log
_SLOW_ENDPOINTS = frozenset(("/query", "/batch", "/shard-batch"))


class _RequestContext:
    """Per-request observability state threaded through ``_dispatch``.

    Created once per request in :meth:`QueryServer._begin_request`; handlers
    use :meth:`child` to hand the trace across executor-thread hops and fill
    ``args``/``tags`` for the slow-query log.  ``remote`` marks requests
    that arrived with trace headers -- their span records are shipped back
    in the response body so the caller can assemble one connected tree.
    """

    __slots__ = (
        "endpoint", "method", "started", "trace", "root", "remote",
        "args", "tags", "root_recorded",
    )

    def __init__(self, endpoint: str, method: str) -> None:
        self.endpoint = endpoint
        self.method = method
        self.started = time.perf_counter()
        self.trace: Optional[tracing.Trace] = None
        self.root: Optional[Dict[str, object]] = None
        self.remote = False
        self.args: Dict[str, object] = {}
        self.tags: Dict[str, object] = {}
        self.root_recorded = False

    def child(self):
        """The ``(trace, parent span id)`` context for downstream work."""
        if self.trace is None:
            return None
        return self.trace, self.root["span_id"]

    def finish_root(self, status: int) -> None:
        """Close the root span (idempotent; normally done post-request)."""
        if self.trace is None or self.root_recorded:
            return
        self.root["duration_ms"] = (time.perf_counter() - self.started) * 1000.0
        self.root["tags"]["status"] = status
        self.root["tags"].update(self.tags)
        self.trace.add(self.root)
        self.root_recorded = True


class _TextBody(bytes):
    """Internal: a response body to be written as ``text/plain`` (/metrics)."""


class QueryServer:
    """Admission-controlled asyncio HTTP front door for one store.

    Args:
        store: the :class:`~repro.engine.store.IntervalStore` (or sharded
            store) to serve.  Updates must flow through the server (or the
            store) so the cache generation moves; mutating the raw index
            behind the store's back would serve stale cached answers.
        host / port: bind address; port 0 picks a free port (see
            :attr:`port` after :meth:`start`).
        cache: a :class:`~repro.serve.cache.ResultCache`, a capacity int
            (0 disables caching), or ``None`` for the 1024-entry default.
        max_pending: admission bound -- query requests admitted (queued or
            executing) at once before new ones get 503s.
        max_batch: most queries coalesced into one ``store.run_batch`` call.
        batch_window: seconds the batcher waits for stragglers after the
            first query of a batch; 0 (default) drains greedily, adding no
            latency for a lone client.
        drain_timeout: seconds :meth:`stop` waits for admitted requests.
        stream: a :class:`~repro.stream.deltas.StandingQueryManager` to
            serve subscriptions from (pass the previous server's manager to
            survive a restart with exact catch-up); ``None`` creates one
            lazily on the first ``/subscribe``.
        streaming: enable the chunked-transfer variant of ``/poll-deltas``
            (``stream: true`` in the request); long-poll stays the default.
        max_pollers: most ``/poll-deltas`` requests waiting at once -- they
            park on an event instead of holding admission slots, so they
            get their own bound (503 past it).
        poll_timeout: hard cap in seconds on one long-poll wait (and on one
            chunked streaming response); clients ask for less via
            ``timeout``.
        max_poller_lag: backpressure bound handed to the lazily created
            :class:`~repro.stream.deltas.StandingQueryManager`: a
            subscription whose poller lags past this many retained records
            has its log dropped and is forced through ``resync_required``
            (``None``: lag gauges observe but never act).
        instrument: enable per-request tracing, latency histograms and the
            slow-query log.  Off, the server still serves ``/metrics`` and
            counts requests, but skips all per-request span bookkeeping --
            the uninstrumented leg of the overhead benchmark.
        slow_threshold: seconds a ``/query``/``/batch``/``/shard-batch``
            request must take to land in the slow-query log (0 records
            every completed request).
        slow_capacity: slow-query ring-buffer size.
    """

    def __init__(
        self,
        store: IntervalStore,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        cache: "ResultCache | int | None" = None,
        max_pending: int = 64,
        max_batch: int = 64,
        batch_window: float = 0.0,
        drain_timeout: float = 10.0,
        stream: "StandingQueryManager | None" = None,
        streaming: bool = False,
        max_pollers: int = 256,
        poll_timeout: float = 30.0,
        max_poller_lag: Optional[int] = None,
        instrument: bool = True,
        slow_threshold: float = 0.25,
        slow_capacity: int = 64,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_pollers < 1:
            raise ValueError(f"max_pollers must be >= 1, got {max_pollers}")
        self._store = store
        self._host = host
        self._port = port
        self._cache = resolve_cache(cache)
        self._max_pending = max_pending
        self._max_batch = max_batch
        self._batch_window = batch_window
        self._drain_timeout = drain_timeout
        self._stream = stream
        self._streaming = streaming
        self._max_pollers = max_pollers
        self._poll_timeout = poll_timeout
        self._max_poller_lag = max_poller_lag

        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._connections: set = set()  # open client writers, for shutdown
        self._handlers: set = set()  # per-connection handler tasks
        self._batcher: Optional[asyncio.Task] = None
        self._pending: Optional[asyncio.Queue] = None
        self._update_lock: Optional[asyncio.Lock] = None
        self._idle: Optional[asyncio.Event] = None
        self._inflight = 0  # admitted query requests (loop thread only)
        self._draining = False
        self._started_at: Optional[float] = None
        #: per-subscription long-poll wakeups (loop thread only); set by the
        #: delta engine's notifier via call_soon_threadsafe
        self._stream_waiters: Dict[int, asyncio.Event] = {}
        self._pollers = 0  # parked /poll-deltas requests (loop thread only)
        #: background revalidation tasks (SWR cache refills), held so the
        #: event loop cannot garbage-collect them mid-flight
        self._revalidations: set = set()

        self._instrument = instrument
        self.slow_log = SlowQueryLog(threshold=slow_threshold, capacity=slow_capacity)
        #: per-server registry chained to the process-global one, so one
        #: scrape shows serving counters AND engine-wide state
        self.metrics = MetricsRegistry(parent=global_registry())
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Every serving metric lives on the registry; nothing is kept twice.

        Push counters are incremented inline on the request path; values the
        system already maintains elsewhere (cache counters, stream gauges,
        WAL state, kernel fan-out health) are registered as pull callbacks
        read at scrape time.
        """
        metrics = self.metrics
        self._m_requests = metrics.counter(
            "repro_requests_total", "HTTP requests received"
        )
        self._m_queries = metrics.counter(
            "repro_queries_total", "queries received (incl. per-batch-member)"
        )
        self._m_batches = metrics.counter(
            "repro_batches_total", "store.run_batch calls issued by the batcher"
        )
        self._m_batched_queries = metrics.counter(
            "repro_batched_queries_total", "queries executed through coalesced batches"
        )
        self._m_rejected = metrics.counter(
            "repro_rejected_total", "requests rejected by admission control (503)"
        )
        self._m_updates = metrics.counter(
            "repro_updates_total", "inserts and deletes applied"
        )
        self._m_errors = metrics.counter(
            "repro_errors_total", "requests answered with a 4xx/5xx error"
        )
        self._m_latency = metrics.histogram(
            "repro_request_seconds",
            "request wall time by operation class",
            labelnames=("op",),
        )
        # pre-bound per-op children: the post-request hook runs on the
        # cache-hit hot path, where the labels() key lookup is measurable
        self._m_latency_ops = {
            op: self._m_latency.labels(op=op)
            for op in set(_ENDPOINT_OPS.values()) | {"other"}
        }
        metrics.gauge_function(
            "repro_inflight_requests", "admitted requests in flight",
            lambda: self._inflight,
        )
        metrics.gauge_function(
            "repro_draining", "1 while the server refuses new work",
            lambda: int(self._draining),
        )
        metrics.gauge_function(
            "repro_intervals", "live intervals in the served store",
            lambda: len(self._store),
        )
        metrics.gauge_function(
            "repro_result_generation", "the store's result generation token",
            lambda: self._store.result_generation(),
        )
        metrics.counter_function(
            "repro_slow_queries_total", "requests recorded by the slow-query log",
            lambda: self.slow_log.recorded,
        )
        self._cache.register_metrics(metrics)
        metrics.gauge_function(
            "repro_stream_gauges", "standing-query gauges by name",
            self._stream_gauge_samples, labelnames=("gauge",),
        )
        metrics.gauge_function(
            "repro_wal_segments", "live WAL segment files",
            lambda: self._durability_value("wal_segments"),
        )
        metrics.gauge_function(
            "repro_wal_bytes", "bytes across live WAL segments",
            lambda: self._durability_value("wal_bytes"),
        )
        metrics.gauge_function(
            "repro_durability_degraded", "1 when the WAL can no longer persist",
            lambda: int(getattr(self._store, "durability", None) is not None
                        and self._store.durability.degraded),
        )
        metrics.gauge_function(
            "repro_fanout_disabled", "1 when kernel fan-out tripped off",
            lambda: int(bool(getattr(self._store.index, "_fanout_disabled", False))),
        )
        metrics.gauge_function(
            "repro_kernel_delta_depth", "pending-update records in the kernel delta log",
            lambda: int(self._store.index.kernel_delta_depth())
            if hasattr(self._store.index, "kernel_delta_depth") else 0,
        )
        metrics.gauge_function(
            "repro_failed_replicas", "replicas currently marked failed",
            lambda: len(self._store.index.failed_replicas())
            if hasattr(self._store.index, "failed_replicas") else 0,
        )

    def _stream_gauge_samples(self) -> Dict[tuple, float]:
        if self._stream is None:
            return {}
        return {
            (name,): float(value) for name, value in self._stream.gauges().items()
        }

    def _durability_value(self, key: str) -> float:
        durability = getattr(self._store, "durability", None)
        if durability is None:
            return 0.0
        return float(durability.state().get(key, 0.0))

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def store(self) -> IntervalStore:
        return self._store

    @property
    def cache(self) -> ResultCache:
        return self._cache

    @property
    def stream(self) -> Optional[StandingQueryManager]:
        """The standing-query manager (None until the first /subscribe).

        Hand this to the next server's ``stream=`` to survive a restart
        with exact catch-up: the manager stays attached to the store while
        the server is down, so its logs keep accumulating deltas.
        """
        return self._stream

    @property
    def port(self) -> int:
        """The bound port (resolves a requested port 0 after :meth:`start`)."""
        return self._port

    @property
    def address(self) -> str:
        return f"http://{self._host}:{self._port}"

    @property
    def draining(self) -> bool:
        return self._draining

    def serving_stats(self) -> Dict[str, object]:
        """Serving + cache + engine state as one JSON-friendly dict.

        Every counter here *is* the registry's value (``/stats`` is a
        named view over the same snapshot ``/metrics`` renders -- nothing
        is maintained twice), plus exact latency quantiles per operation
        class under ``"latency"``.
        """
        cache = self._cache.stats()
        state: Dict[str, object] = {
            "requests": int(self._m_requests.value),
            "queries": int(self._m_queries.value),
            "batches": int(self._m_batches.value),
            "batched_queries": int(self._m_batched_queries.value),
            "rejected": int(self._m_rejected.value),
            "updates": int(self._m_updates.value),
            "errors": int(self._m_errors.value),
            "slow_queries": int(self.slow_log.recorded),
            "latency": {
                op: histogram.summary()
                for op, histogram in (
                    (labels[0], metric)
                    for labels, metric in self._m_latency.samples()
                )
            },
            "inflight": self._inflight,
            "max_pending": self._max_pending,
            "draining": self._draining,
            "uptime_s": (time.time() - self._started_at) if self._started_at else 0.0,
            "intervals": len(self._store),
            "backend": self._store.backend,
            "result_generation": self._store.result_generation(),
            "cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "invalidated": cache.invalidated,
                "evictions": cache.evictions,
                "size": cache.size,
                "capacity": cache.capacity,
                "hit_rate": cache.hit_rate,
                "stale_served": cache.stale_served,
                "stale_while_revalidate": self._cache.stale_while_revalidate,
                "ttl": self._cache.ttl,
                "ttl_expired": cache.ttl_expired,
            },
            "stream": (
                self._stream.gauges()
                if self._stream is not None
                else {
                    "subscriptions_active": 0.0,
                    "deltas_emitted": 0.0,
                    "deltas_coalesced": 0.0,
                    "catchup_resyncs": 0.0,
                    "poller_lag": 0.0,
                    "slowest_poller_lag": 0.0,
                    "backpressure_drops": 0.0,
                }
            ),
        }
        durability = getattr(self._store, "durability", None)
        if durability is not None:
            state["durability"] = durability.state()
            state["durability_degraded"] = durability.degraded
        index = self._store.index
        if hasattr(index, "epoch"):
            state["epoch"] = index.epoch
        if hasattr(index, "replica_health"):
            state["replica_health"] = index.replica_health()
            state["failed_replicas"] = index.failed_replicas()
        if hasattr(index, "kernel_retries"):
            # batch-kernel fan-out health (sharded indexes over a pool)
            state["fanout_disabled"] = bool(index._fanout_disabled)
            state["kernel_retries"] = int(index.kernel_retries)
            state["kernel_delta_depth"] = int(index.kernel_delta_depth())
        if hasattr(index, "worker_residencies"):
            # best-effort: {} while the pool is down or not a process pool
            state["worker_residencies"] = {
                str(pid): list(tokens)
                for pid, tokens in index.worker_residencies().items()
            }
        return state

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind the listener and start the batcher (call from the loop)."""
        self._loop = asyncio.get_running_loop()
        self._pending = asyncio.Queue()
        self._update_lock = asyncio.Lock()
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = await asyncio.start_server(
            self._client_connected, self._host, self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        self._batcher = asyncio.ensure_future(self._batch_loop())
        self._started_at = time.time()
        if self._stream is not None:
            # a manager handed over from a previous server: its logs kept
            # accumulating deltas while we were down, so reconnecting
            # clients catch up from their last-acked generation
            self._stream.add_notifier(self._on_deltas)

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting work, optionally drain in-flight requests, close.

        With ``drain`` (the default) new query/update requests are rejected
        with 503 while everything already admitted runs to completion (up to
        ``drain_timeout`` seconds); without it, in-flight requests are
        abandoned with the connections.
        """
        self._draining = True
        # drain-on-stop for the push transport: parked long-polls (and
        # chunked streams) wake, flush whatever their logs hold and answer;
        # the manager itself stays attached to the store so a successor
        # server can serve exact catch-up from the same logs
        for waiter in list(self._stream_waiters.values()):
            waiter.set()
        if self._stream is not None:
            self._stream.remove_notifier(self._on_deltas)
        if drain and self._inflight:
            try:
                await asyncio.wait_for(self._idle.wait(), self._drain_timeout)
            except asyncio.TimeoutError:  # pragma: no cover - slow store
                pass
        if self._batcher is not None:
            await self._pending.put(_SHUTDOWN)
            try:
                await asyncio.wait_for(self._batcher, self._drain_timeout)
            except asyncio.TimeoutError:  # pragma: no cover - slow store
                self._batcher.cancel()
            self._batcher = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # idle keep-alive connections would otherwise hold their handler
        # tasks (blocked in readline) across loop shutdown
        for writer in list(self._connections):
            writer.close()
        if self._handlers:
            await asyncio.gather(*list(self._handlers), return_exceptions=True)

    async def serve_forever(self) -> None:
        """Run until cancelled (``KeyboardInterrupt`` drains via ``run``)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    def run(self, on_started=None) -> None:
        """Blocking convenience: start, serve until interrupted, drain.

        ``on_started`` (if given) is called with the server once the
        listener is bound -- the CLI uses it to print the resolved address.
        A ``KeyboardInterrupt`` cancels serving and runs the graceful drain
        (:meth:`stop`): admitted requests finish, then the port closes.
        """

        async def _main() -> None:
            await self.start()
            if on_started is not None:
                on_started(self)
            try:
                await self._server.serve_forever()
            except asyncio.CancelledError:  # pragma: no cover - signal path
                pass
            finally:
                await self.stop()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:  # pragma: no cover - interactive path
            pass

    # ------------------------------------------------------------------ #
    # the batcher: queued queries -> store.run_batch in a worker thread
    # ------------------------------------------------------------------ #
    async def _batch_loop(self) -> None:
        assert self._pending is not None and self._loop is not None
        while True:
            item = await self._pending.get()
            if item is _SHUTDOWN:
                return
            batch = [item]
            if self._batch_window > 0:
                deadline = self._loop.time() + self._batch_window
            else:
                deadline = None
            while len(batch) < self._max_batch:
                try:
                    extra = self._pending.get_nowait()
                except asyncio.QueueEmpty:
                    if deadline is None:
                        break
                    timeout = deadline - self._loop.time()
                    if timeout <= 0:
                        break
                    try:
                        extra = await asyncio.wait_for(self._pending.get(), timeout)
                    except asyncio.TimeoutError:
                        break
                if extra is _SHUTDOWN:
                    await self._pending.put(_SHUTDOWN)  # re-deliver for the outer loop
                    break
                batch.append(extra)
            self._m_batches.inc()
            self._m_batched_queries.inc(len(batch))
            try:
                generation, answers = await self._loop.run_in_executor(
                    None, self._execute_batch, batch
                )
            except Exception as exc:  # pragma: no cover - store failure path
                for item in batch:
                    if not item[2].done():
                        item[2].set_exception(exc)
                continue
            for item, answer in zip(batch, answers):
                if not item[2].done():
                    item[2].set_result((generation, answer))

    def _execute_batch(self, batch) -> Tuple[int, List[object]]:
        """Worker-thread execution of one coalesced batch.

        The generation is read *before* the probes: an update racing the
        batch then stamps cached answers with the pre-update token, which
        the bumped current generation invalidates on the next lookup --
        never the other way around.

        Batch items are ``(query, count_only, future, trace_ctx)``.  The
        batcher coalesces queries from *different* requests, so one store
        call may serve several traces: the engine's spans attach to the
        first traced item's context, and every traced item gets a flat
        ``batched_execute`` span tagged with the shared batch size.
        """
        generation = self._store.result_generation()
        contexts = [item[3] for item in batch if len(item) > 3 and item[3] is not None]
        queries = [item[0] for item in batch]
        kinds = [item[1] for item in batch]
        answers: List[object] = [None] * len(batch)

        def _run() -> None:
            for count_only in set(kinds):
                positions = [i for i, kind in enumerate(kinds) if kind is count_only]
                result = self._store.run_batch(
                    [queries[i] for i in positions], count_only=count_only
                )
                values = result.counts if count_only else result.ids
                for position, value in zip(positions, values):
                    answers[position] = value

        if contexts:
            started = time.perf_counter()
            tracing.bind(contexts[0], _run)()
            duration_ms = (time.perf_counter() - started) * 1000.0
            for trace, parent_id in contexts:
                record = tracing.new_span_record(
                    trace.trace_id, parent_id, "batched_execute",
                    {"batch_size": len(batch), "shared": len(contexts) > 1},
                )
                record["duration_ms"] = duration_ms
                trace.add(record)
        else:
            _run()
        return generation, answers

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    async def _client_connected(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _Reject as reject:
                    # an oversized body cannot be skipped safely on a
                    # keep-alive stream: answer and close the connection
                    self._m_errors.inc()
                    payload = _encode({"error": reject.message})
                    writer.write(
                        b"HTTP/1.1 %d %s\r\n"
                        b"Content-Type: application/json\r\n"
                        b"Content-Length: %d\r\n"
                        b"Connection: close\r\n"
                        b"\r\n"
                        % (reject.status, _REASONS.get(reject.status, b"Error"), len(payload))
                    )
                    writer.write(payload)
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, body, headers = request
                self._m_requests.inc()
                ctx = self._begin_request(method, path, headers)
                try:
                    status, payload = await self._dispatch(method, path, body, ctx)
                except _Reject as reject:
                    # only admission pressure counts as "rejected" -- a 400
                    # from a malformed request is a client error, and mixing
                    # them would inflate the overload signal operators (and
                    # client backoff) key on
                    if reject.status == 503:
                        self._m_rejected.inc()
                    else:
                        self._m_errors.inc()
                    status = reject.status
                    payload = _encode(
                        {"error": reject.message, "retry_after": reject.retry_after}
                    )
                except ReproError as exc:
                    self._m_errors.inc()
                    status, payload = 400, _encode({"error": str(exc)})
                except Exception as exc:  # noqa: BLE001 - the server must answer
                    self._m_errors.inc()
                    status, payload = 500, _encode(
                        {"error": f"{type(exc).__name__}: {exc}"}
                    )
                if isinstance(payload, _StreamBody):
                    await self._stream_response(writer, payload)
                    continue
                self._finish_request(ctx, status)
                content_type = (
                    b"text/plain; version=0.0.4; charset=utf-8"
                    if isinstance(payload, _TextBody)
                    else b"application/json"
                )
                writer.write(
                    b"HTTP/1.1 %d %s\r\n"
                    b"Content-Type: %s\r\n"
                    b"Content-Length: %d\r\n"
                    b"\r\n"
                    % (status, _REASONS.get(status, b"OK"), content_type, len(payload))
                )
                writer.write(payload)
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._handlers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes, Dict[str, str]]]:
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            return None
        length = 0
        headers: Dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            key = name.strip().lower()
            headers[key] = value.strip()
            if key == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = 0
        if length > MAX_BODY_BYTES:
            raise _Reject(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, body, headers

    def _begin_request(
        self, method: str, target: str, headers: Dict[str, str]
    ) -> _RequestContext:
        """Open the per-request observability context (cheap when off)."""
        endpoint = target.split("?", 1)[0].rstrip("/") or "/"
        ctx = _RequestContext(endpoint, method)
        if not self._instrument:
            return ctx
        remote = tracing.context_from_headers(headers)
        if remote is not None:
            trace_id, parent_id = remote
            ctx.trace = tracing.Trace(trace_id)
            ctx.remote = True
        else:
            ctx.trace = tracing.Trace()
            parent_id = None
        ctx.root = tracing.new_span_record(
            ctx.trace.trace_id, parent_id, f"server:{endpoint}",
            {"method": method},
        )
        return ctx

    def _finish_request(self, ctx: _RequestContext, status: int) -> None:
        """The single post-request hook: root span, latency, extras, slow log.

        Replaces the per-handler ``_publish_stats_extras`` call sites: every
        request path funnels through here exactly once, after the response
        body is final.
        """
        if not self._instrument:
            self._publish_stats_extras()
            return
        duration = time.perf_counter() - ctx.started
        ctx.finish_root(status)
        op = _ENDPOINT_OPS.get(ctx.endpoint, "other")
        self._m_latency_ops[op].observe(duration)
        self._publish_stats_extras()
        if ctx.endpoint in _SLOW_ENDPOINTS:
            tags = dict(ctx.tags)
            tags["status"] = status
            self.slow_log.record(
                ctx.endpoint, duration, args=ctx.args, tags=tags, trace=ctx.trace
            )

    async def _dispatch(
        self, method: str, target: str, body: bytes, ctx: _RequestContext
    ):
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        payload = _decode(body)
        if parts.query:
            for key, values in parse_qs(parts.query).items():
                payload.setdefault(key, values[0])
        if path == "/metrics":
            return 200, _TextBody(self.metrics.render().encode())
        if path == "/slow-queries":
            limit = payload.get("limit")
            return 200, _encode(
                {
                    "threshold_s": self.slow_log.threshold,
                    "recorded": self.slow_log.recorded,
                    "slow_queries": self.slow_log.entries(
                        int(limit) if limit is not None else None
                    ),
                }
            )
        if path == "/health":
            # degraded (WAL can no longer persist writes) stays 200: reads
            # still work, so load balancers keep routing them -- the flag
            # tells operators writes are being refused
            durability = getattr(self._store, "durability", None)
            degraded = durability is not None and durability.degraded
            status = 503 if self._draining else 200
            body: Dict[str, object] = {
                "status": "draining"
                if self._draining
                else ("degraded" if degraded else "ok")
            }
            if durability is not None:
                body["durability_degraded"] = degraded
            return status, _encode(body)
        if path == "/stats":
            return 200, _encode(self.serving_stats())
        if path == "/query":
            return await self._handle_query(payload, ctx)
        if path == "/batch":
            return await self._handle_batch(payload, ctx)
        if path == "/poll-deltas":
            return await self._handle_poll(payload)
        if path in ("/insert", "/delete", "/maintain", "/subscribe", "/unsubscribe"):
            if method != "POST":
                # mutations must never ride on "safe" methods: a browser
                # prefetch or monitoring GET must not change the index
                return 405, _encode(
                    {"error": f"{path} requires POST, got {method}"}
                )
            handler = {
                "/insert": self._handle_insert,
                "/delete": self._handle_delete,
                "/maintain": self._handle_maintain,
                "/subscribe": self._handle_subscribe,
                "/unsubscribe": self._handle_unsubscribe,
            }[path]
            return await handler(payload)
        return 404, _encode({"error": f"no such endpoint: {path}"})

    def _admit(self, count: int = 1) -> None:
        """Admission control: count a request's weight in, or reject.

        ``count`` is the request's admission weight (1 per plain query; one
        per ``max_batch``-chunk for ``/batch``).  The *whole* weight must
        fit under ``max_pending`` -- checking only for a free slot would let
        one huge batch admit many multiples of the bound in a single
        request.  A request too heavy to ever fit is a client error (split
        it), not backpressure.
        """
        if self._draining:
            raise _Reject(503, "draining", retry_after=None)
        if count > self._max_pending:
            raise _Reject(
                400,
                f"request weight {count} exceeds max_pending "
                f"{self._max_pending}; split the batch",
            )
        if self._inflight + count > self._max_pending:
            raise _Reject(503, "overloaded", retry_after=1)
        self._inflight += count
        self._idle.clear()

    def _release(self, count: int = 1) -> None:
        self._inflight -= count
        if self._inflight <= 0:
            self._inflight = 0
            self._idle.set()

    def _publish_stats_extras(self) -> None:
        """Mirror cache gauges into the index's instrumented-query extras.

        Runs on the cache-hit hot path, so it reads the raw counters
        lock-free (they are gauges; a torn read is impossible for ints
        under the GIL) instead of building a full stats snapshot.
        """
        extras = getattr(self._store.index, "stats_extras", None)
        if extras is not None:
            extras["cache_hits"] = float(self._cache.hits)
            extras["cache_size"] = float(len(self._cache))
            extras["cache_stale_served"] = float(self._cache.stale_served)

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    @staticmethod
    def _parse_query(payload: Dict[str, object]) -> Tuple[Query, bool]:
        if "stab" in payload:
            point = int(payload["stab"])
            query = Query.stabbing(point)
        else:
            if "start" not in payload or "end" not in payload:
                raise _Reject(400, "query needs start and end (or stab)")
            query = Query(int(payload["start"]), int(payload["end"]))
        count_only = _truthy(payload.get("count_only", False))
        return query, count_only

    @staticmethod
    def _parse_refinement(payload: Dict[str, object]):
        """The optional ``relation`` + ``stats`` refinements of a query."""
        relation = payload.get("relation")
        try:
            relation = parse_relation(relation) if relation else None
        except ReproError as exc:
            raise _Reject(400, str(exc)) from exc
        return relation, _truthy(payload.get("stats", False))

    @staticmethod
    def _query_kind(count_only: bool, relation, with_stats: bool) -> str:
        """Cache-key kind separating result shapes over the same range."""
        kind = "count" if count_only else "ids"
        if relation is not None:
            kind += f":{relation.value}"
        if with_stats:
            kind += ":stats"
        return kind

    async def _handle_query(self, payload: Dict[str, object], ctx: _RequestContext):
        query, count_only = self._parse_query(payload)
        relation, with_stats = self._parse_refinement(payload)
        self._m_queries.inc()
        ctx.args = {"start": query.start, "end": query.end, "count_only": count_only}
        key = normalize_query_key(
            query.start, query.end, self._query_kind(count_only, relation, with_stats)
        )
        if self._cache.enabled:
            cached = self._cache.get(key, self._store.result_generation())
            if isinstance(cached, StaleResult):
                # stale-while-revalidate: answer with the stale body now,
                # recompute off the request path (admission willing)
                self._schedule_revalidation(key, query, count_only, relation, with_stats)
                ctx.tags["cache"] = "stale"
                return 200, cached.value
            if cached is not ResultCache.MISS:
                ctx.tags["cache"] = "hit"
                return 200, cached
            ctx.tags["cache"] = "miss"
        self._admit()
        try:
            if relation is not None or with_stats:
                # relation/instrumented queries bypass the batcher: they run
                # through the fluent builder, which run_batch has no lane for
                generation, answer = await self._loop.run_in_executor(
                    None,
                    tracing.bind(ctx.child(), self._execute_refined),
                    query,
                    count_only,
                    relation,
                    with_stats,
                )
                answer["generation"] = generation
                body = _encode(answer)
            else:
                future: asyncio.Future = self._loop.create_future()
                await self._pending.put((query, count_only, future, ctx.child()))
                generation, answer = await future
                # the generation rides on every answer: the cluster router
                # keys its distributed cache off this token alone
                body = _encode(
                    {"count": answer, "generation": generation}
                    if count_only
                    else {"ids": answer, "count": len(answer), "generation": generation}
                )
        finally:
            self._release()
        self._cache.put(key, generation, body)
        return 200, body

    def _refined_answer(
        self, query: Query, count_only: bool, relation, with_stats: bool
    ) -> Dict[str, object]:
        """One relation/instrumented query through the fluent builder."""
        builder = self._store.query().overlapping(query.start, query.end)
        if relation is not None:
            builder = builder.relation(relation)
        result = builder.build()
        ids = result.ids()
        answer: Dict[str, object] = (
            {"count": len(ids)} if count_only else {"ids": ids, "count": len(ids)}
        )
        if relation is not None:
            answer["relation"] = relation.value
        if with_stats:
            stats = _stats_dict(result.stats())
            if relation is not None:
                # the probe's counters stand, but "results" reports what
                # this query answered -- the post-refinement ids
                stats["results"] = len(ids)
            answer["stats"] = stats
        return answer

    def _execute_refined(
        self, query: Query, count_only: bool, relation, with_stats: bool
    ) -> Tuple[int, Dict[str, object]]:
        """Worker-thread execution of one relation/instrumented query."""
        generation = self._store.result_generation()
        return generation, self._refined_answer(query, count_only, relation, with_stats)

    def _execute_refined_chunk(
        self, queries: List[Query], count_only: bool, relation, with_stats: bool
    ) -> Tuple[int, List[Dict[str, object]]]:
        """Worker-thread execution of one refined /batch chunk.

        Like :meth:`_execute_batch`, the generation is read before any
        probe so cached answers can only be stamped conservatively.
        """
        generation = self._store.result_generation()
        return generation, [
            self._refined_answer(query, count_only, relation, with_stats)
            for query in queries
        ]

    def _schedule_revalidation(
        self, key, query: Query, count_only: bool, relation, with_stats: bool
    ) -> None:
        """Refresh a stale-served entry in the background.

        The recompute respects admission control: under overload it is
        simply skipped -- the entry was marked served-stale, so the next
        touch misses and recomputes on the request path instead.
        """
        try:
            self._admit()
        except _Reject:
            return

        async def _revalidate() -> None:
            try:
                if relation is not None or with_stats:
                    generation, answer = await self._loop.run_in_executor(
                        None,
                        self._execute_refined,
                        query,
                        count_only,
                        relation,
                        with_stats,
                    )
                    answer["generation"] = generation
                    body = _encode(answer)
                else:
                    future: asyncio.Future = self._loop.create_future()
                    await self._pending.put((query, count_only, future, None))
                    generation, answer = await future
                    body = _encode(
                        {"count": answer, "generation": generation}
                        if count_only
                        else {
                            "ids": answer,
                            "count": len(answer),
                            "generation": generation,
                        }
                    )
                self._cache.put(key, generation, body)
            except Exception:  # noqa: BLE001 - a lost refresh only costs a miss
                pass
            finally:
                self._release()

        task = self._loop.create_task(_revalidate())
        self._revalidations.add(task)
        task.add_done_callback(self._revalidations.discard)

    async def _handle_batch(self, payload: Dict[str, object], ctx: _RequestContext):
        pairs = payload.get("queries")
        if not isinstance(pairs, list) or not pairs:
            raise _Reject(400, "batch needs a non-empty 'queries' list")
        count_only = _truthy(payload.get("count_only", False))
        # relation/stats apply batch-wide: every query in the request is
        # refined the same way (mixed batches are two requests)
        relation, with_stats = self._parse_refinement(payload)
        refined = relation is not None or with_stats
        queries = [Query(int(start), int(end)) for start, end in pairs]
        self._m_queries.inc(len(queries))
        ctx.args = {"queries": len(queries), "count_only": count_only}
        kind = self._query_kind(count_only, relation, with_stats)
        generation = self._store.result_generation()
        answers: List[object] = [None] * len(queries)
        missing: List[int] = []
        for position, query in enumerate(queries):
            key = normalize_query_key(query.start, query.end, kind)
            cached = (
                self._cache.get(key, generation)
                if self._cache.enabled
                else ResultCache.MISS
            )
            if isinstance(cached, StaleResult):
                answers[position] = cached.value
                self._schedule_revalidation(
                    key, query, count_only, relation, with_stats
                )
            elif cached is ResultCache.MISS:
                missing.append(position)
            else:
                answers[position] = cached
        if missing:
            # a batch request weighs in proportion to its work: each
            # max_batch-sized chunk counts one admission slot, so a single
            # huge /batch cannot slip past the bound that per-query
            # requests respect, and no run_batch call exceeds max_batch
            chunks = [
                missing[i : i + self._max_batch]
                for i in range(0, len(missing), self._max_batch)
            ]
            self._admit(len(chunks))
            # (generation, value) pairs: each chunk's answers are stamped
            # with the generation read before *that* chunk ran -- stamping
            # an early chunk with a later chunk's token could mask an
            # update that landed between them
            filled: List[Tuple[int, object]] = []
            try:
                for chunk in chunks:
                    if refined:
                        chunk_generation, chunk_values = await self._loop.run_in_executor(
                            None,
                            tracing.bind(ctx.child(), self._execute_refined_chunk),
                            [queries[i] for i in chunk],
                            count_only,
                            relation,
                            with_stats,
                        )
                    else:
                        # one ctx per chunk (on the first item), not one per
                        # query: _execute_batch adds one batched_execute span
                        # per traced item, and N copies of the same span
                        # would bloat the tree without adding information
                        batch = [
                            (queries[i], count_only, None,
                             ctx.child() if j == 0 else None)
                            for j, i in enumerate(chunk)
                        ]
                        chunk_generation, chunk_values = await self._loop.run_in_executor(
                            None, self._execute_batch, batch
                        )
                    filled.extend((chunk_generation, value) for value in chunk_values)
                    self._m_batches.inc()
                    self._m_batched_queries.inc(len(chunk))
            finally:
                self._release(len(chunks))
            for position, (fill_generation, value) in zip(missing, filled):
                if refined:
                    value["generation"] = fill_generation
                    body = _encode(value)  # already a full answer dict
                else:
                    body = _encode(
                        {"count": value, "generation": fill_generation}
                        if count_only
                        else {
                            "ids": value,
                            "count": len(value),
                            "generation": fill_generation,
                        }
                    )
                answers[position] = body
                self._cache.put(
                    normalize_query_key(
                        queries[position].start, queries[position].end, kind
                    ),
                    fill_generation,
                    body,
                )
        # answers hold per-query encoded bodies; splice them into one array
        return 200, b'{"results": [' + b", ".join(answers) + b"]}"

    async def _handle_insert(self, payload: Dict[str, object]):
        for field in ("id", "start", "end"):
            if field not in payload:
                raise _Reject(400, f"insert needs '{field}'")
        interval = Interval(
            int(payload["id"]), int(payload["start"]), int(payload["end"])
        )
        self._admit()
        try:
            async with self._update_lock:
                await self._loop.run_in_executor(None, self._store.insert, interval)
        except DurabilityDegradedError as exc:
            # the WAL could not persist the record: refuse the write
            # loudly (503, no Retry-After -- degraded does not self-heal)
            # instead of acknowledging an update a crash would lose
            raise _Reject(503, str(exc)) from exc
        finally:
            self._release()
        self._m_updates.inc()
        return 200, _encode(
            {"inserted": interval.id, "generation": self._store.result_generation()}
        )

    async def _handle_delete(self, payload: Dict[str, object]):
        if "id" not in payload:
            raise _Reject(400, "delete needs 'id'")
        interval_id = int(payload["id"])
        self._admit()
        try:
            async with self._update_lock:
                found = await self._loop.run_in_executor(
                    None, self._store.delete, interval_id
                )
        except DurabilityDegradedError as exc:
            raise _Reject(503, str(exc)) from exc
        finally:
            self._release()
        self._m_updates.inc()
        return 200, _encode(
            {
                "deleted": bool(found),
                "id": interval_id,
                "generation": self._store.result_generation(),
            }
        )

    async def _handle_maintain(self, payload: Dict[str, object]):
        force = _truthy(payload.get("force", False))
        self._admit()
        try:
            async with self._update_lock:
                report = await self._loop.run_in_executor(
                    None, lambda: self._store.maintain(force=force)
                )
        finally:
            self._release()
        return 200, _encode(
            {
                "summary": report.summary(),
                "generation": self._store.result_generation(),
            }
        )

    # ------------------------------------------------------------------ #
    # standing queries: subscribe / unsubscribe / poll-deltas
    # ------------------------------------------------------------------ #
    def _stream_manager(self) -> StandingQueryManager:
        """The manager, created lazily on the first /subscribe."""
        if self._stream is None:
            self._stream = StandingQueryManager(
                self._store, max_poller_lag=self._max_poller_lag
            )
            self._stream.add_notifier(self._on_deltas)
        return self._stream

    def _on_deltas(self, subscription_id: int) -> None:
        """Delta-engine notifier: wake that subscription's parked pollers.

        Fires on whatever thread ran the insert/delete; hop to the loop
        thread (and swallow the race with loop shutdown).
        """
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(self._wake_pollers, subscription_id)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    def _wake_pollers(self, subscription_id: int) -> None:
        waiter = self._stream_waiters.get(subscription_id)
        if waiter is not None:
            waiter.set()

    async def _handle_subscribe(self, payload: Dict[str, object]):
        manager = self._stream_manager()
        resync_id = payload.get("subscription_id")
        self._admit()
        try:
            # under the update lock: the snapshot is then exactly consistent
            # with its generation even on plain (unsharded) stores, whose
            # writes the server serialises through this lock
            async with self._update_lock:
                if resync_id is not None:
                    result = await self._loop.run_in_executor(
                        None, manager.resync, int(resync_id)
                    )
                else:
                    query, _ = self._parse_query(payload)
                    relation, _ = self._parse_refinement(payload)
                    min_duration = int(payload.get("min_duration", 0))
                    raw_max = payload.get("max_duration")
                    max_duration = int(raw_max) if raw_max is not None else None
                    filter_spec = payload.get("filter")
                    if isinstance(filter_spec, str):
                        # query-string transport: the spec arrives JSON-encoded
                        try:
                            filter_spec = json.loads(filter_spec)
                        except ValueError as exc:
                            raise _Reject(
                                400, f"invalid JSON in 'filter': {exc}"
                            ) from exc
                    result = await self._loop.run_in_executor(
                        None,
                        lambda: manager.subscribe(
                            query.start,
                            query.end,
                            relation=relation,
                            min_duration=min_duration,
                            max_duration=max_duration,
                            filter_spec=filter_spec,
                        ),
                    )
        except UnknownSubscriptionError as exc:
            self._m_errors.inc()
            return 404, _encode({"error": str(exc), "resync_required": True})
        finally:
            self._release()
        return 200, _encode(
            {
                "subscription_id": result.subscription.subscription_id,
                "generation": result.generation,
                "ids": list(result.ids),
                "count": len(result.ids),
                "relation": (
                    result.subscription.relation.value
                    if result.subscription.relation is not None
                    else None
                ),
                "filter": result.subscription.filter_spec,
            }
        )

    async def _handle_unsubscribe(self, payload: Dict[str, object]):
        if "subscription_id" not in payload:
            raise _Reject(400, "unsubscribe needs 'subscription_id'")
        subscription_id = int(payload["subscription_id"])
        removed = self._stream.unsubscribe(subscription_id) if self._stream else False
        waiter = self._stream_waiters.pop(subscription_id, None)
        if waiter is not None:
            waiter.set()  # parked pollers wake and observe the 404
        return 200, _encode(
            {"unsubscribed": bool(removed), "subscription_id": subscription_id}
        )

    async def _handle_poll(self, payload: Dict[str, object]):
        if "subscription_id" not in payload:
            raise _Reject(400, "poll-deltas needs 'subscription_id'")
        subscription_id = int(payload["subscription_id"])
        after = int(payload.get("after", -1))
        timeout = min(
            float(payload.get("timeout", self._poll_timeout)), self._poll_timeout
        )
        if self._stream is None:
            self._m_errors.inc()
            return 404, _encode(
                {
                    "error": f"unknown subscription {subscription_id}",
                    "resync_required": True,
                }
            )
        if self._pollers >= self._max_pollers:
            raise _Reject(503, "too many pollers", retry_after=1)
        if _truthy(payload.get("stream", False)):
            if not self._streaming:
                raise _Reject(
                    400, "chunked streaming is disabled on this server"
                )
            # handled by _client_connected as a chunked response
            return 200, _StreamBody(subscription_id, after, timeout)
        deadline = self._loop.time() + timeout
        self._pollers += 1
        try:
            while True:
                waiter = self._stream_waiters.get(subscription_id)
                if waiter is None:
                    waiter = self._stream_waiters[subscription_id] = asyncio.Event()
                # clear BEFORE polling: a delta landing between the poll and
                # the wait sets the event and the wait returns immediately --
                # the other order can sleep through a wakeup
                waiter.clear()
                try:
                    result = self._stream.poll(
                        subscription_id, after_generation=after
                    )
                except UnknownSubscriptionError as exc:
                    self._m_errors.inc()
                    return 404, _encode(
                        {"error": str(exc), "resync_required": True}
                    )
                if result.records or result.resync_required or self._draining:
                    break
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    break
                try:
                    await asyncio.wait_for(waiter.wait(), remaining)
                except asyncio.TimeoutError:
                    continue  # re-poll once: the empty answer must carry a
                    # generation current at return time, not pre-wait
        finally:
            self._pollers -= 1
        return 200, _encode(self._poll_body(subscription_id, result))

    @staticmethod
    def _poll_body(subscription_id: int, result) -> Dict[str, object]:
        return {
            "subscription_id": subscription_id,
            "generation": result.generation,
            "resync_required": result.resync_required,
            "deltas": [
                {
                    "seq": record.seq,
                    "generation": record.generation,
                    "added": list(record.added),
                    "removed": list(record.removed),
                    "coalesced": record.coalesced,
                }
                for record in result.records
            ],
        }

    async def _stream_response(
        self, writer: asyncio.StreamWriter, stream: "_StreamBody"
    ) -> None:
        """The chunked variant of /poll-deltas: one JSON object per chunk.

        Runs until the client's timeout (capped by ``poll_timeout``), the
        server drains, or the subscription needs a resync; ends with the
        terminating zero chunk so keep-alive survives the response.
        """
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/json\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"\r\n"
        )
        subscription_id = stream.subscription_id
        after = stream.after
        deadline = self._loop.time() + stream.timeout
        self._pollers += 1
        try:
            while True:
                waiter = self._stream_waiters.get(subscription_id)
                if waiter is None:
                    waiter = self._stream_waiters[subscription_id] = asyncio.Event()
                waiter.clear()
                try:
                    result = self._stream.poll(
                        subscription_id, after_generation=after
                    )
                except UnknownSubscriptionError as exc:
                    # newline-terminated payloads let clients readline() over
                    # the decoded stream without seeing chunk boundaries
                    _write_chunk(
                        writer,
                        _encode({"error": str(exc), "resync_required": True}) + b"\n",
                    )
                    break
                if result.records or result.resync_required:
                    _write_chunk(
                        writer,
                        _encode(self._poll_body(subscription_id, result)) + b"\n",
                    )
                    await writer.drain()
                    if result.resync_required:
                        break
                    after = result.generation
                if self._draining:
                    break
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    # heartbeat: an idle stream still hands the client the
                    # current generation, so its next request's `after` is
                    # fresh and barriers on generation cannot stall
                    if result.generation > after:
                        _write_chunk(
                            writer,
                            _encode(self._poll_body(subscription_id, result))
                            + b"\n",
                        )
                        await writer.drain()
                    break
                try:
                    await asyncio.wait_for(waiter.wait(), remaining)
                except asyncio.TimeoutError:
                    continue  # re-poll once: the heartbeat must be fresh
        finally:
            self._pollers -= 1
        writer.write(b"0\r\n\r\n")
        await writer.drain()


class _StreamBody:
    """Internal: a /poll-deltas answer to be written as a chunked stream."""

    __slots__ = ("subscription_id", "after", "timeout")

    def __init__(self, subscription_id: int, after: int, timeout: float) -> None:
        self.subscription_id = subscription_id
        self.after = after
        self.timeout = timeout


# --------------------------------------------------------------------------- #
# wire helpers
# --------------------------------------------------------------------------- #
_REASONS = {
    200: b"OK",
    400: b"Bad Request",
    404: b"Not Found",
    405: b"Method Not Allowed",
    413: b"Payload Too Large",
    500: b"Internal Server Error",
    503: b"Service Unavailable",
}


def _encode(payload: Dict[str, object]) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode()


def _decode(body: bytes) -> Dict[str, object]:
    if not body:
        return {}
    try:
        decoded = json.loads(body)
    except ValueError as exc:
        raise _Reject(400, f"invalid JSON body: {exc}") from exc
    if not isinstance(decoded, dict):
        raise _Reject(400, "JSON body must be an object")
    return decoded


def _truthy(value: object) -> bool:
    if isinstance(value, str):
        return value.lower() in ("1", "true", "yes", "on")
    return bool(value)


def _write_chunk(writer: asyncio.StreamWriter, data: bytes) -> None:
    """One HTTP/1.1 chunked-transfer frame (hex length, CRLF-framed)."""
    writer.write(b"%x\r\n" % len(data))
    writer.write(data)
    writer.write(b"\r\n")


def _stats_dict(stats: QueryStats) -> Dict[str, object]:
    """JSON-friendly view of one query's :class:`QueryStats`."""
    return {
        "results": stats.results,
        "comparisons": stats.comparisons,
        "partitions_accessed": stats.partitions_accessed,
        "partitions_compared": stats.partitions_compared,
        "candidates": stats.candidates,
        "extra": dict(stats.extra),
    }


# --------------------------------------------------------------------------- #
# threaded convenience (tests, benchmarks, examples)
# --------------------------------------------------------------------------- #
class ServerHandle:
    """A :class:`QueryServer` running on a daemon thread's event loop."""

    def __init__(
        self,
        server: QueryServer,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        self.server = server
        self._thread = thread
        self._loop = loop

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> str:
        return self.server.address

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Drain and stop the server, then stop and join the loop thread.

        Idempotent: stopping an already-stopped handle is a no-op, so
        teardown code can stop every member of a cluster without tracking
        which replicas a test already killed.
        """
        if self._loop.is_closed():
            return
        try:
            future = asyncio.run_coroutine_threadsafe(
                self.server.stop(drain=drain), self._loop
            )
        except RuntimeError:
            return  # loop shut down between the check and the submit
        try:
            future.result(timeout=timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def start_server_thread(
    store: IntervalStore, *, server_cls: "type | None" = None, **kwargs
) -> ServerHandle:
    """Start a :class:`QueryServer` on a fresh daemon-thread event loop.

    Returns once the listener is bound (so :attr:`ServerHandle.port` is
    real); stop with :meth:`ServerHandle.stop` or use as a context manager.
    ``server_cls`` swaps in a subclass (the cluster tier's
    :class:`~repro.cluster.shard_server.ShardServer`).
    """
    server = (server_cls or QueryServer)(store, **kwargs)
    started = threading.Event()
    failure: List[BaseException] = []
    holder: Dict[str, asyncio.AbstractEventLoop] = {}

    def _runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        holder["loop"] = loop
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to the caller
            failure.append(exc)
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.run_until_complete(loop.shutdown_default_executor())
            loop.close()

    thread = threading.Thread(target=_runner, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):  # pragma: no cover - wedged loop
        raise RuntimeError("query server failed to start within 30s")
    if failure:
        raise RuntimeError(f"query server failed to start: {failure[0]!r}") from failure[0]
    return ServerHandle(server, thread, holder["loop"])
