"""The asyncio query server: JSON-over-HTTP serving for an IntervalStore.

Stdlib-only (``asyncio`` + hand-rolled HTTP/1.1 with keep-alive), because the
serving loop is part of the reproduction: the point is to measure what the
layers above the index -- admission control, batching, caching -- cost and
buy, not to benchmark a web framework.

Request lifecycle::

    client -> admission control -> result cache -> batching queue -> store
                   |                    |                               |
                 503 when          hit: respond with the         run_batch in a
               max_pending         cached pre-encoded body       worker thread,
              queries queued       (generation-checked)          fill the cache

* **Admission control**: at most ``max_pending`` query requests may be
  admitted (queued or executing) at once; beyond that the server answers
  ``503`` with a ``Retry-After`` hint instead of queueing unboundedly --
  under overload it degrades by rejecting, never by falling over.
* **Batching**: admitted queries land on one queue; a batcher task drains
  greedily (up to ``max_batch``, optionally waiting ``batch_window`` seconds
  for stragglers) and answers each drained batch with a single
  ``store.run_batch`` call in a worker thread, so concurrent clients
  naturally coalesce while a lone client never waits on a timer.
* **Result cache**: hits are served straight off the event loop as
  pre-encoded bodies; entries are stamped with the store's
  ``result_generation()`` and go stale *by construction* when an update or
  maintenance pass moves the generation (:mod:`repro.serve.cache`).
* **Graceful drain**: ``stop()`` flips the server into draining mode (new
  work is rejected with 503), waits for admitted requests to finish, then
  closes the listener.

Endpoints (all JSON):

===========================  ==================================================
``GET/POST /query``          one range/stabbing query; ``start``/``end``
                             (+ ``count_only``) as query-string or JSON body
``POST /batch``              ``{"queries": [[s, e], ...], "count_only": bool}``
``POST /insert``             ``{"id": i, "start": s, "end": e}``
``POST /delete``             ``{"id": i}``
``POST /maintain``           one maintenance pass (``{"force": bool}``)
``GET /stats``               serving counters, cache stats, epoch + replica
                             health
``GET /health``              liveness (``200``, or ``503`` while draining)
===========================  ==================================================
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.core.errors import ReproError
from repro.core.interval import Interval, Query
from repro.engine.store import IntervalStore
from repro.serve.cache import ResultCache, normalize_query_key, resolve_cache

__all__ = ["QueryServer", "ServerHandle", "start_server_thread"]

#: sentinel shutting the batcher task down
_SHUTDOWN = object()

#: largest request body the server will buffer; one rogue Content-Length
#: must not bypass admission control by exhausting memory (8 MiB holds a
#: ~300k-query batch request -- far past any sane client)
MAX_BODY_BYTES = 8 * 1024 * 1024


class _Reject(Exception):
    """Internal: turn a request into an HTTP error response."""

    def __init__(self, status: int, message: str, retry_after: Optional[int] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


class QueryServer:
    """Admission-controlled asyncio HTTP front door for one store.

    Args:
        store: the :class:`~repro.engine.store.IntervalStore` (or sharded
            store) to serve.  Updates must flow through the server (or the
            store) so the cache generation moves; mutating the raw index
            behind the store's back would serve stale cached answers.
        host / port: bind address; port 0 picks a free port (see
            :attr:`port` after :meth:`start`).
        cache: a :class:`~repro.serve.cache.ResultCache`, a capacity int
            (0 disables caching), or ``None`` for the 1024-entry default.
        max_pending: admission bound -- query requests admitted (queued or
            executing) at once before new ones get 503s.
        max_batch: most queries coalesced into one ``store.run_batch`` call.
        batch_window: seconds the batcher waits for stragglers after the
            first query of a batch; 0 (default) drains greedily, adding no
            latency for a lone client.
        drain_timeout: seconds :meth:`stop` waits for admitted requests.
    """

    def __init__(
        self,
        store: IntervalStore,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        cache: "ResultCache | int | None" = None,
        max_pending: int = 64,
        max_batch: int = 64,
        batch_window: float = 0.0,
        drain_timeout: float = 10.0,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._store = store
        self._host = host
        self._port = port
        self._cache = resolve_cache(cache)
        self._max_pending = max_pending
        self._max_batch = max_batch
        self._batch_window = batch_window
        self._drain_timeout = drain_timeout

        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._connections: set = set()  # open client writers, for shutdown
        self._handlers: set = set()  # per-connection handler tasks
        self._batcher: Optional[asyncio.Task] = None
        self._pending: Optional[asyncio.Queue] = None
        self._update_lock: Optional[asyncio.Lock] = None
        self._idle: Optional[asyncio.Event] = None
        self._inflight = 0  # admitted query requests (loop thread only)
        self._draining = False
        self._started_at: Optional[float] = None

        # serving counters (loop thread only; snapshotted by /stats)
        self._requests = 0
        self._queries = 0
        self._batches = 0
        self._batched_queries = 0
        self._rejected = 0
        self._updates = 0
        self._errors = 0

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def store(self) -> IntervalStore:
        return self._store

    @property
    def cache(self) -> ResultCache:
        return self._cache

    @property
    def port(self) -> int:
        """The bound port (resolves a requested port 0 after :meth:`start`)."""
        return self._port

    @property
    def address(self) -> str:
        return f"http://{self._host}:{self._port}"

    @property
    def draining(self) -> bool:
        return self._draining

    def serving_stats(self) -> Dict[str, object]:
        """Serving + cache + engine state as one JSON-friendly dict."""
        cache = self._cache.stats()
        state: Dict[str, object] = {
            "requests": self._requests,
            "queries": self._queries,
            "batches": self._batches,
            "batched_queries": self._batched_queries,
            "rejected": self._rejected,
            "updates": self._updates,
            "errors": self._errors,
            "inflight": self._inflight,
            "max_pending": self._max_pending,
            "draining": self._draining,
            "uptime_s": (time.time() - self._started_at) if self._started_at else 0.0,
            "intervals": len(self._store),
            "backend": self._store.backend,
            "result_generation": self._store.result_generation(),
            "cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "invalidated": cache.invalidated,
                "evictions": cache.evictions,
                "size": cache.size,
                "capacity": cache.capacity,
                "hit_rate": cache.hit_rate,
            },
        }
        index = self._store.index
        if hasattr(index, "epoch"):
            state["epoch"] = index.epoch
        if hasattr(index, "replica_health"):
            state["replica_health"] = index.replica_health()
            state["failed_replicas"] = index.failed_replicas()
        return state

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind the listener and start the batcher (call from the loop)."""
        self._loop = asyncio.get_running_loop()
        self._pending = asyncio.Queue()
        self._update_lock = asyncio.Lock()
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = await asyncio.start_server(
            self._client_connected, self._host, self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        self._batcher = asyncio.ensure_future(self._batch_loop())
        self._started_at = time.time()

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting work, optionally drain in-flight requests, close.

        With ``drain`` (the default) new query/update requests are rejected
        with 503 while everything already admitted runs to completion (up to
        ``drain_timeout`` seconds); without it, in-flight requests are
        abandoned with the connections.
        """
        self._draining = True
        if drain and self._inflight:
            try:
                await asyncio.wait_for(self._idle.wait(), self._drain_timeout)
            except asyncio.TimeoutError:  # pragma: no cover - slow store
                pass
        if self._batcher is not None:
            await self._pending.put(_SHUTDOWN)
            try:
                await asyncio.wait_for(self._batcher, self._drain_timeout)
            except asyncio.TimeoutError:  # pragma: no cover - slow store
                self._batcher.cancel()
            self._batcher = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # idle keep-alive connections would otherwise hold their handler
        # tasks (blocked in readline) across loop shutdown
        for writer in list(self._connections):
            writer.close()
        if self._handlers:
            await asyncio.gather(*list(self._handlers), return_exceptions=True)

    async def serve_forever(self) -> None:
        """Run until cancelled (``KeyboardInterrupt`` drains via ``run``)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    def run(self, on_started=None) -> None:
        """Blocking convenience: start, serve until interrupted, drain.

        ``on_started`` (if given) is called with the server once the
        listener is bound -- the CLI uses it to print the resolved address.
        A ``KeyboardInterrupt`` cancels serving and runs the graceful drain
        (:meth:`stop`): admitted requests finish, then the port closes.
        """

        async def _main() -> None:
            await self.start()
            if on_started is not None:
                on_started(self)
            try:
                await self._server.serve_forever()
            except asyncio.CancelledError:  # pragma: no cover - signal path
                pass
            finally:
                await self.stop()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:  # pragma: no cover - interactive path
            pass

    # ------------------------------------------------------------------ #
    # the batcher: queued queries -> store.run_batch in a worker thread
    # ------------------------------------------------------------------ #
    async def _batch_loop(self) -> None:
        assert self._pending is not None and self._loop is not None
        while True:
            item = await self._pending.get()
            if item is _SHUTDOWN:
                return
            batch = [item]
            if self._batch_window > 0:
                deadline = self._loop.time() + self._batch_window
            else:
                deadline = None
            while len(batch) < self._max_batch:
                try:
                    extra = self._pending.get_nowait()
                except asyncio.QueueEmpty:
                    if deadline is None:
                        break
                    timeout = deadline - self._loop.time()
                    if timeout <= 0:
                        break
                    try:
                        extra = await asyncio.wait_for(self._pending.get(), timeout)
                    except asyncio.TimeoutError:
                        break
                if extra is _SHUTDOWN:
                    await self._pending.put(_SHUTDOWN)  # re-deliver for the outer loop
                    break
                batch.append(extra)
            self._batches += 1
            self._batched_queries += len(batch)
            try:
                generation, answers = await self._loop.run_in_executor(
                    None, self._execute_batch, batch
                )
            except Exception as exc:  # pragma: no cover - store failure path
                for _, _, future in batch:
                    if not future.done():
                        future.set_exception(exc)
                continue
            for (_, _, future), answer in zip(batch, answers):
                if not future.done():
                    future.set_result((generation, answer))

    def _execute_batch(self, batch) -> Tuple[int, List[object]]:
        """Worker-thread execution of one coalesced batch.

        The generation is read *before* the probes: an update racing the
        batch then stamps cached answers with the pre-update token, which
        the bumped current generation invalidates on the next lookup --
        never the other way around.
        """
        generation = self._store.result_generation()
        queries = [query for query, _, _ in batch]
        kinds = [count_only for _, count_only, _ in batch]
        answers: List[object] = [None] * len(batch)
        for count_only in set(kinds):
            positions = [i for i, kind in enumerate(kinds) if kind is count_only]
            result = self._store.run_batch(
                [queries[i] for i in positions], count_only=count_only
            )
            values = result.counts if count_only else result.ids
            for position, value in zip(positions, values):
                answers[position] = value
        return generation, answers

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    async def _client_connected(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _Reject as reject:
                    # an oversized body cannot be skipped safely on a
                    # keep-alive stream: answer and close the connection
                    self._errors += 1
                    payload = _encode({"error": reject.message})
                    writer.write(
                        b"HTTP/1.1 %d %s\r\n"
                        b"Content-Type: application/json\r\n"
                        b"Content-Length: %d\r\n"
                        b"Connection: close\r\n"
                        b"\r\n"
                        % (reject.status, _REASONS.get(reject.status, b"Error"), len(payload))
                    )
                    writer.write(payload)
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, body = request
                self._requests += 1
                try:
                    status, payload = await self._dispatch(method, path, body)
                except _Reject as reject:
                    # only admission pressure counts as "rejected" -- a 400
                    # from a malformed request is a client error, and mixing
                    # them would inflate the overload signal operators (and
                    # client backoff) key on
                    if reject.status == 503:
                        self._rejected += 1
                    else:
                        self._errors += 1
                    status = reject.status
                    payload = _encode(
                        {"error": reject.message, "retry_after": reject.retry_after}
                    )
                except ReproError as exc:
                    self._errors += 1
                    status, payload = 400, _encode({"error": str(exc)})
                except Exception as exc:  # noqa: BLE001 - the server must answer
                    self._errors += 1
                    status, payload = 500, _encode(
                        {"error": f"{type(exc).__name__}: {exc}"}
                    )
                writer.write(
                    b"HTTP/1.1 %d %s\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: %d\r\n"
                    b"\r\n" % (status, _REASONS.get(status, b"OK"), len(payload))
                )
                writer.write(payload)
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._handlers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            return None
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = 0
        if length > MAX_BODY_BYTES:
            raise _Reject(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, body

    async def _dispatch(self, method: str, target: str, body: bytes):
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        payload = _decode(body)
        if parts.query:
            for key, values in parse_qs(parts.query).items():
                payload.setdefault(key, values[0])
        if path == "/health":
            status = 503 if self._draining else 200
            return status, _encode({"status": "draining" if self._draining else "ok"})
        if path == "/stats":
            return 200, _encode(self.serving_stats())
        if path == "/query":
            return await self._handle_query(payload)
        if path == "/batch":
            return await self._handle_batch(payload)
        if path in ("/insert", "/delete", "/maintain"):
            if method != "POST":
                # mutations must never ride on "safe" methods: a browser
                # prefetch or monitoring GET must not change the index
                return 405, _encode(
                    {"error": f"{path} requires POST, got {method}"}
                )
            handler = {
                "/insert": self._handle_insert,
                "/delete": self._handle_delete,
                "/maintain": self._handle_maintain,
            }[path]
            return await handler(payload)
        return 404, _encode({"error": f"no such endpoint: {path}"})

    def _admit(self, count: int = 1) -> None:
        """Admission control: count a request's weight in, or reject.

        ``count`` is the request's admission weight (1 per plain query; one
        per ``max_batch``-chunk for ``/batch``).  The *whole* weight must
        fit under ``max_pending`` -- checking only for a free slot would let
        one huge batch admit many multiples of the bound in a single
        request.  A request too heavy to ever fit is a client error (split
        it), not backpressure.
        """
        if self._draining:
            raise _Reject(503, "draining", retry_after=None)
        if count > self._max_pending:
            raise _Reject(
                400,
                f"request weight {count} exceeds max_pending "
                f"{self._max_pending}; split the batch",
            )
        if self._inflight + count > self._max_pending:
            raise _Reject(503, "overloaded", retry_after=1)
        self._inflight += count
        self._idle.clear()

    def _release(self, count: int = 1) -> None:
        self._inflight -= count
        if self._inflight <= 0:
            self._inflight = 0
            self._idle.set()

    def _publish_stats_extras(self) -> None:
        """Mirror cache gauges into the index's instrumented-query extras.

        Runs on the cache-hit hot path, so it reads the raw counters
        lock-free (they are gauges; a torn read is impossible for ints
        under the GIL) instead of building a full stats snapshot.
        """
        extras = getattr(self._store.index, "stats_extras", None)
        if extras is not None:
            extras["cache_hits"] = float(self._cache.hits)
            extras["cache_size"] = float(len(self._cache))

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    @staticmethod
    def _parse_query(payload: Dict[str, object]) -> Tuple[Query, bool]:
        if "stab" in payload:
            point = int(payload["stab"])
            query = Query.stabbing(point)
        else:
            if "start" not in payload or "end" not in payload:
                raise _Reject(400, "query needs start and end (or stab)")
            query = Query(int(payload["start"]), int(payload["end"]))
        count_only = _truthy(payload.get("count_only", False))
        return query, count_only

    async def _handle_query(self, payload: Dict[str, object]):
        query, count_only = self._parse_query(payload)
        self._queries += 1
        key = normalize_query_key(
            query.start, query.end, "count" if count_only else "ids"
        )
        if self._cache.enabled:
            cached = self._cache.get(key, self._store.result_generation())
            if cached is not ResultCache.MISS:
                self._publish_stats_extras()
                return 200, cached
        self._admit()
        try:
            future: asyncio.Future = self._loop.create_future()
            await self._pending.put((query, count_only, future))
            generation, answer = await future
        finally:
            self._release()
        body = _encode(
            {"count": answer} if count_only else {"ids": answer, "count": len(answer)}
        )
        self._cache.put(key, generation, body)
        self._publish_stats_extras()
        return 200, body

    async def _handle_batch(self, payload: Dict[str, object]):
        pairs = payload.get("queries")
        if not isinstance(pairs, list) or not pairs:
            raise _Reject(400, "batch needs a non-empty 'queries' list")
        count_only = _truthy(payload.get("count_only", False))
        queries = [Query(int(start), int(end)) for start, end in pairs]
        self._queries += len(queries)
        kind = "count" if count_only else "ids"
        generation = self._store.result_generation()
        answers: List[object] = [None] * len(queries)
        missing: List[int] = []
        for position, query in enumerate(queries):
            key = normalize_query_key(query.start, query.end, kind)
            cached = (
                self._cache.get(key, generation)
                if self._cache.enabled
                else ResultCache.MISS
            )
            if cached is ResultCache.MISS:
                missing.append(position)
            else:
                answers[position] = cached
        if missing:
            # a batch request weighs in proportion to its work: each
            # max_batch-sized chunk counts one admission slot, so a single
            # huge /batch cannot slip past the bound that per-query
            # requests respect, and no run_batch call exceeds max_batch
            chunks = [
                missing[i : i + self._max_batch]
                for i in range(0, len(missing), self._max_batch)
            ]
            self._admit(len(chunks))
            # (generation, value) pairs: each chunk's answers are stamped
            # with the generation read before *that* chunk ran -- stamping
            # an early chunk with a later chunk's token could mask an
            # update that landed between them
            filled: List[Tuple[int, object]] = []
            try:
                for chunk in chunks:
                    batch = [(queries[i], count_only, None) for i in chunk]
                    chunk_generation, chunk_values = await self._loop.run_in_executor(
                        None, self._execute_batch, batch
                    )
                    filled.extend((chunk_generation, value) for value in chunk_values)
                    self._batches += 1
                    self._batched_queries += len(chunk)
            finally:
                self._release(len(chunks))
            for position, (fill_generation, value) in zip(missing, filled):
                body = _encode(
                    {"count": value}
                    if count_only
                    else {"ids": value, "count": len(value)}
                )
                answers[position] = body
                self._cache.put(
                    normalize_query_key(
                        queries[position].start, queries[position].end, kind
                    ),
                    fill_generation,
                    body,
                )
        self._publish_stats_extras()
        # answers hold per-query encoded bodies; splice them into one array
        return 200, b'{"results": [' + b", ".join(answers) + b"]}"

    async def _handle_insert(self, payload: Dict[str, object]):
        for field in ("id", "start", "end"):
            if field not in payload:
                raise _Reject(400, f"insert needs '{field}'")
        interval = Interval(
            int(payload["id"]), int(payload["start"]), int(payload["end"])
        )
        self._admit()
        try:
            async with self._update_lock:
                await self._loop.run_in_executor(None, self._store.insert, interval)
        finally:
            self._release()
        self._updates += 1
        return 200, _encode(
            {"inserted": interval.id, "generation": self._store.result_generation()}
        )

    async def _handle_delete(self, payload: Dict[str, object]):
        if "id" not in payload:
            raise _Reject(400, "delete needs 'id'")
        interval_id = int(payload["id"])
        self._admit()
        try:
            async with self._update_lock:
                found = await self._loop.run_in_executor(
                    None, self._store.delete, interval_id
                )
        finally:
            self._release()
        self._updates += 1
        return 200, _encode(
            {
                "deleted": bool(found),
                "id": interval_id,
                "generation": self._store.result_generation(),
            }
        )

    async def _handle_maintain(self, payload: Dict[str, object]):
        force = _truthy(payload.get("force", False))
        self._admit()
        try:
            async with self._update_lock:
                report = await self._loop.run_in_executor(
                    None, lambda: self._store.maintain(force=force)
                )
        finally:
            self._release()
        return 200, _encode(
            {
                "summary": report.summary(),
                "generation": self._store.result_generation(),
            }
        )


# --------------------------------------------------------------------------- #
# wire helpers
# --------------------------------------------------------------------------- #
_REASONS = {
    200: b"OK",
    400: b"Bad Request",
    404: b"Not Found",
    405: b"Method Not Allowed",
    413: b"Payload Too Large",
    500: b"Internal Server Error",
    503: b"Service Unavailable",
}


def _encode(payload: Dict[str, object]) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode()


def _decode(body: bytes) -> Dict[str, object]:
    if not body:
        return {}
    try:
        decoded = json.loads(body)
    except ValueError as exc:
        raise _Reject(400, f"invalid JSON body: {exc}") from exc
    if not isinstance(decoded, dict):
        raise _Reject(400, "JSON body must be an object")
    return decoded


def _truthy(value: object) -> bool:
    if isinstance(value, str):
        return value.lower() in ("1", "true", "yes", "on")
    return bool(value)


# --------------------------------------------------------------------------- #
# threaded convenience (tests, benchmarks, examples)
# --------------------------------------------------------------------------- #
class ServerHandle:
    """A :class:`QueryServer` running on a daemon thread's event loop."""

    def __init__(
        self,
        server: QueryServer,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        self.server = server
        self._thread = thread
        self._loop = loop

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> str:
        return self.server.address

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Drain and stop the server, then stop and join the loop thread."""
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(drain=drain), self._loop
        )
        try:
            future.result(timeout=timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def start_server_thread(store: IntervalStore, **kwargs) -> ServerHandle:
    """Start a :class:`QueryServer` on a fresh daemon-thread event loop.

    Returns once the listener is bound (so :attr:`ServerHandle.port` is
    real); stop with :meth:`ServerHandle.stop` or use as a context manager.
    """
    server = QueryServer(store, **kwargs)
    started = threading.Event()
    failure: List[BaseException] = []
    holder: Dict[str, asyncio.AbstractEventLoop] = {}

    def _runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        holder["loop"] = loop
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to the caller
            failure.append(exc)
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.run_until_complete(loop.shutdown_default_executor())
            loop.close()

    thread = threading.Thread(target=_runner, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):  # pragma: no cover - wedged loop
        raise RuntimeError("query server failed to start within 30s")
    if failure:
        raise RuntimeError(f"query server failed to start: {failure[0]!r}") from failure[0]
    return ServerHandle(server, thread, holder["loop"])
