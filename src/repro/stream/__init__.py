"""Standing queries: subscriptions, incremental deltas, catch-up.

The streaming subsystem turns the one-shot query engine into a push system
(see the README's "Standing queries" section):

* a **subscription registry + matching index** -- standing queries are
  stored as intervals in their own store, so routing an insert/delete to
  the subscriptions it affects is one overlap probe, O(affected), never a
  scan (:mod:`repro.stream.registry`);
* an **incremental delta engine** -- update listeners on the engine emit
  exact ``(generation, added_ids, removed_ids)`` records per subscription;
  maintenance (folds, refreshes, re-partitions) advances the generation
  without emitting, so replay is exact across it
  (:mod:`repro.stream.deltas`);
* a **bounded per-subscription delta log** -- sequence-numbered records
  with net-effect coalescing under backpressure and an explicit
  "resync required" signal once exact catch-up is impossible
  (:mod:`repro.stream.log`);
* **push transport** -- ``/subscribe``, ``/unsubscribe``, ``/poll-deltas``
  on the query server (long-poll, chunked streaming behind a flag) and a
  :class:`~repro.serve.client.StreamClient` that folds deltas into a live
  local result set.
"""

from repro.stream.deltas import (
    PollResult,
    StandingQueryManager,
    SubscribeResult,
    UnknownSubscriptionError,
)
from repro.stream.filters import (
    FilterSpecError,
    compile_filter,
    describe_filter,
    normalize_filter,
)
from repro.stream.log import DeltaLog, DeltaRecord
from repro.stream.registry import Subscription, SubscriptionRegistry, parse_relation

__all__ = [
    "DeltaLog",
    "DeltaRecord",
    "FilterSpecError",
    "PollResult",
    "StandingQueryManager",
    "SubscribeResult",
    "Subscription",
    "SubscriptionRegistry",
    "UnknownSubscriptionError",
    "compile_filter",
    "describe_filter",
    "normalize_filter",
    "parse_relation",
]
