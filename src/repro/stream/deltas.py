"""The incremental delta engine behind standing queries.

A :class:`StandingQueryManager` attaches one update listener to a store
(:class:`~repro.engine.sharded.ShardedIndex` when the store is sharded --
its listener fires under the maintenance lock with the authoritative
post-commit generation -- or the plain :class:`~repro.engine.store.IntervalStore`
otherwise) and turns every insert/delete into per-subscription deltas:

1. the mutated interval is routed through the
   :class:`~repro.stream.registry.SubscriptionRegistry`'s matching index --
   one overlap probe, O(affected subscriptions);
2. each affected subscription's :class:`~repro.stream.log.DeltaLog` gets a
   ``(generation, added_ids, removed_ids)`` record;
3. registered notifiers (the query server's long-poll wakeups) fire for the
   affected subscription ids.

Maintenance is the part that must *not* produce deltas: journal folds,
snapshot refreshes and re-partitions republish epoch state and may bump the
result generation, but the queryable contents are unchanged -- the engine
records the generation advance (``sync`` events) and emits nothing, so
replaying a subscription's deltas across a fold/repartition neither
duplicates nor drops a change.

Exactness contract: folding a subscription's deltas up to generation ``g``
onto its subscribe-time snapshot equals re-running the standing query at
``g``.  Concurrent writers to a *plain* (unsharded) store must be
serialised externally (the query server's update lock does this); sharded
stores serialise updates internally through the maintenance lock.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.errors import ReproError
from repro.core.interval import Interval, Query
from repro.stream.log import DeltaLog, DeltaRecord
from repro.stream.registry import Subscription, SubscriptionRegistry

__all__ = [
    "PollResult",
    "StandingQueryManager",
    "SubscribeResult",
    "UnknownSubscriptionError",
]


class UnknownSubscriptionError(ReproError):
    """Polled or unsubscribed an id the manager does not know."""

    def __init__(self, subscription_id: int):
        super().__init__(f"unknown subscription {subscription_id}")
        self.subscription_id = subscription_id


@dataclass(frozen=True)
class SubscribeResult:
    """A new (or resynced) subscription plus its consistent snapshot."""

    subscription: Subscription
    generation: int
    ids: Tuple[int, ...]


@dataclass(frozen=True)
class PollResult:
    """One catch-up read of a subscription's delta log.

    ``generation`` is the token to ack on the next poll: every delta at or
    below it has been delivered (records list) or was already acked.
    ``resync_required`` means exact catch-up is impossible (the log was
    truncated or coalesced past the ack) -- re-subscribe / resync instead
    of folding.
    """

    records: List[DeltaRecord]
    generation: int
    resync_required: bool


class StandingQueryManager:
    """Subscriptions, delta emission and catch-up over one store.

    Args:
        store: the :class:`~repro.engine.store.IntervalStore` (or sharded
            store) to watch.  Updates must flow through the store (or the
            query server) -- the same contract the result cache has.
        registry: optionally a pre-configured
            :class:`~repro.stream.registry.SubscriptionRegistry`.
        log_capacity / max_coalesced_ids: per-subscription
            :class:`~repro.stream.log.DeltaLog` bounds.
        max_poller_lag: optional backpressure bound on per-subscription lag
            (retained records).  When a laggard's log grows past it, the
            log is dropped outright and the subscription is forced into
            ``resync_required`` on its next poll -- bounding the memory a
            slow or absent consumer can pin, instead of coalescing forever.
            ``None`` (the default) keeps the observe-only behaviour.
    """

    def __init__(
        self,
        store,
        *,
        registry: Optional[SubscriptionRegistry] = None,
        log_capacity: int = 256,
        max_coalesced_ids: int = 4096,
        max_poller_lag: Optional[int] = None,
    ) -> None:
        if max_poller_lag is not None and max_poller_lag < 1:
            raise ReproError(
                f"max_poller_lag must be >= 1 (or None), got {max_poller_lag}"
            )
        self._store = store
        self._registry = registry if registry is not None else SubscriptionRegistry()
        self._log_capacity = log_capacity
        self._max_coalesced_ids = max_coalesced_ids
        self._max_poller_lag = max_poller_lag
        self._backpressure_drops = 0
        self._logs: Dict[int, DeltaLog] = {}
        self._lock = threading.RLock()
        self._notifiers: List[Callable[[int], None]] = []
        self._seen_generation = -1
        self._deltas_emitted = 0
        self._catchup_resyncs = 0
        self._coalesced_retired = 0  # coalesce ops of removed logs
        self._coalesced_live = 0  # running sum over the live logs: the
        # update path publishes gauges per op, so this must stay O(1)
        self._emitter = None
        self.attach()
        # durable stores checkpoint the subscription registry: tell the
        # durability manager whose subscriptions to serialise
        durability = getattr(store, "durability", None)
        if durability is not None:
            durability.attach_stream(self)

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #
    @classmethod
    def restore(
        cls,
        store,
        subscriptions,
        *,
        generation: int,
        log_capacity: int = 256,
        max_coalesced_ids: int = 4096,
        max_poller_lag: Optional[int] = None,
    ) -> "StandingQueryManager":
        """Rebuild a manager from a checkpoint's subscription rows.

        Each restored subscription keeps its pre-crash id and gets a fresh
        delta log whose truncation floor is the checkpoint ``generation``:
        a client acked at or past it catches up exactly from the replayed
        WAL tail (the restore runs *before* replay, so replay's listener
        events land in these logs with their original generations); one
        acked below it gets an explicit ``resync_required``.
        """
        manager = cls(
            store,
            log_capacity=log_capacity,
            max_coalesced_ids=max_coalesced_ids,
            max_poller_lag=max_poller_lag,
        )
        with manager._lock:
            for row in subscriptions:
                query = Query(int(row["start"]), int(row["end"]))
                subscription = manager._registry.restore(
                    int(row["subscription_id"]),
                    query,
                    relation=row.get("relation"),
                    min_duration=int(row.get("min_duration", 0) or 0),
                    max_duration=row.get("max_duration"),
                    filter_spec=row.get("filter"),
                )
                log = DeltaLog(
                    capacity=log_capacity, max_coalesced_ids=max_coalesced_ids
                )
                log.mark_truncated(int(generation))
                manager._logs[subscription.subscription_id] = log
            manager._seen_generation = max(manager._seen_generation, int(generation))
            manager._publish_gauges_locked()
        return manager

    def note_generation(self, generation: int) -> None:
        """Advance the seen generation (recovery calls this after replay)."""
        with self._lock:
            self._seen_generation = max(self._seen_generation, int(generation))

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #
    def attach(self) -> None:
        """Register the update listener (sharded index preferred: its
        events carry the authoritative post-commit generation)."""
        if self._emitter is not None:
            return
        index = getattr(self._store, "index", None)
        if index is not None and hasattr(index, "add_update_listener"):
            emitter = index
        elif hasattr(self._store, "add_update_listener"):
            emitter = self._store
        else:
            raise ReproError(
                f"store {self._store!r} exposes no update listener hook; "
                "standing queries need one to observe inserts/deletes"
            )
        emitter.add_update_listener(self._on_update)
        self._emitter = emitter

    def detach(self) -> None:
        """Unregister the listener (subscriptions and logs are kept)."""
        if self._emitter is not None:
            self._emitter.remove_update_listener(self._on_update)
            self._emitter = None

    close = detach

    @property
    def store(self):
        return self._store

    @property
    def registry(self) -> SubscriptionRegistry:
        return self._registry

    def add_notifier(self, notifier: Callable[[int], None]) -> None:
        """``notifier(subscription_id)`` fires after new deltas land.

        Called outside the manager lock but possibly under the store's
        update serialisation -- keep it non-blocking (the query server
        schedules an event-loop wakeup)."""
        self._notifiers.append(notifier)

    def remove_notifier(self, notifier: Callable[[int], None]) -> None:
        with contextlib.suppress(ValueError):
            self._notifiers.remove(notifier)

    # ------------------------------------------------------------------ #
    # the delta engine: one listener event -> per-subscription records
    # ------------------------------------------------------------------ #
    def _on_update(self, op: str, interval: Optional[Interval], generation: int) -> None:
        if op not in ("insert", "delete"):
            # maintenance republished epoch state: the generation moved but
            # the queryable contents did not -- record the advance, emit no
            # deltas (folding across it must not duplicate or drop changes)
            with self._lock:
                self._seen_generation = max(self._seen_generation, generation)
            return
        if interval is None:  # a delete whose span could not be resolved
            return
        affected = self._registry.affected(interval)
        if not affected:
            with self._lock:
                self._seen_generation = max(self._seen_generation, generation)
            return
        notify: List[int] = []
        with self._lock:
            self._seen_generation = max(self._seen_generation, generation)
            for subscription in affected:
                log = self._logs.get(subscription.subscription_id)
                if log is None:
                    continue
                before = log.coalesce_ops
                if op == "insert":
                    log.append(generation, (interval.id,), ())
                else:
                    log.append(generation, (), (interval.id,))
                self._coalesced_live += log.coalesce_ops - before
                self._deltas_emitted += 1
                if (
                    self._max_poller_lag is not None
                    and len(log) > self._max_poller_lag
                ):
                    # the consumer lagged past the bound: act on the gauge
                    # instead of growing the log -- drop it and force the
                    # poller through an explicit resync
                    log.drop(generation)
                    self._backpressure_drops += 1
                notify.append(subscription.subscription_id)
            self._publish_gauges_locked()
        for subscription_id in notify:
            for notifier in list(self._notifiers):
                notifier(subscription_id)

    # ------------------------------------------------------------------ #
    # subscriptions
    # ------------------------------------------------------------------ #
    def _snapshot_lock(self):
        """The store's update-serialisation lock, when it has one.

        Holding it across (read generation, run query, register) makes the
        snapshot exactly consistent with the generation.  Plain stores have
        no such lock; their subscribe race is self-healing -- a delta
        already contained in the snapshot re-applies idempotently under set
        semantics -- but concurrent writers should be serialised externally
        (the query server does)."""
        index = getattr(self._store, "index", None)
        lock = getattr(index, "maintenance_lock", None)
        if lock is None:
            # the hybrid index serialises its updates through this lock;
            # holding it across the snapshot gives the same exactness
            lock = getattr(index, "_update_lock", None)
        return lock if lock is not None else contextlib.nullcontext()

    def subscribe(
        self,
        start: Optional[int] = None,
        end: Optional[int] = None,
        *,
        stab: Optional[int] = None,
        relation=None,
        min_duration: int = 0,
        max_duration: Optional[int] = None,
        predicate=None,
        filter_spec=None,
    ) -> SubscribeResult:
        """Register a standing query; returns it with a consistent snapshot."""
        if stab is not None:
            query = Query.stabbing(int(stab))
        elif start is not None and end is not None:
            query = Query(int(start), int(end))
        else:
            raise ReproError("subscribe needs start and end (or stab)")
        with self._snapshot_lock():
            with self._lock:
                subscription = self._registry.register(
                    query,
                    relation=relation,
                    min_duration=min_duration,
                    max_duration=max_duration,
                    predicate=predicate,
                    filter_spec=filter_spec,
                )
                self._logs[subscription.subscription_id] = DeltaLog(
                    capacity=self._log_capacity,
                    max_coalesced_ids=self._max_coalesced_ids,
                )
                generation, ids = self._snapshot(subscription)
                self._seen_generation = max(self._seen_generation, generation)
                self._publish_gauges_locked()
        return SubscribeResult(subscription=subscription, generation=generation, ids=ids)

    def resync(self, subscription_id: int) -> SubscribeResult:
        """Fresh snapshot for an existing subscription; resets its log.

        The answer to a ``resync_required`` poll: the client replaces its
        local result set with the returned snapshot and resumes folding
        deltas from the returned generation.
        """
        with self._snapshot_lock():
            with self._lock:
                subscription = self._registry.get(subscription_id)
                if subscription is None:
                    raise UnknownSubscriptionError(subscription_id)
                old = self._logs.get(subscription_id)
                if old is not None:
                    self._coalesced_retired += old.coalesce_ops
                    self._coalesced_live -= old.coalesce_ops
                self._logs[subscription_id] = DeltaLog(
                    capacity=self._log_capacity,
                    max_coalesced_ids=self._max_coalesced_ids,
                )
                generation, ids = self._snapshot(subscription)
                self._seen_generation = max(self._seen_generation, generation)
        return SubscribeResult(subscription=subscription, generation=generation, ids=ids)

    def _snapshot(self, subscription: Subscription) -> Tuple[int, Tuple[int, ...]]:
        generation = int(self._store.result_generation())
        query = subscription.query
        builder = self._store.query().overlapping(query.start, query.end)
        if subscription.relation is not None:
            builder = builder.relation(subscription.relation)
        ids = builder.ids()
        if (
            subscription.min_duration
            or subscription.max_duration is not None
            or subscription.predicate is not None
        ):
            lookup = self._store.index._interval_lookup()
            ids = [
                i
                for i in ids
                if (found := lookup.get(i)) is not None and subscription.matches(found)
            ]
        return generation, tuple(sorted(ids))

    def unsubscribe(self, subscription_id: int) -> bool:
        with self._lock:
            log = self._logs.pop(subscription_id, None)
            if log is not None:
                self._coalesced_retired += log.coalesce_ops
                self._coalesced_live -= log.coalesce_ops
            removed = self._registry.unregister(subscription_id)
            self._publish_gauges_locked()
            return removed

    # ------------------------------------------------------------------ #
    # catch-up
    # ------------------------------------------------------------------ #
    def poll(self, subscription_id: int, after_generation: int = -1) -> PollResult:
        """Deltas newer than the client's last-acked generation.

        Acked records are pruned (the ack doubles as a consumption
        confirmation); the returned generation is what the client acks
        next.  ``resync_required`` means the log can no longer replay the
        gap exactly -- call :meth:`resync`.
        """
        with self._lock:
            log = self._logs.get(subscription_id)
            if log is None:
                raise UnknownSubscriptionError(subscription_id)
            log.ack(after_generation)
            records, resync = log.since(after_generation)
            if resync:
                self._catchup_resyncs += 1
                self._publish_gauges_locked()
                return PollResult(
                    records=[], generation=after_generation, resync_required=True
                )
            generation = max(
                after_generation,
                self._seen_generation,
                records[-1].generation if records else -1,
            )
            return PollResult(
                records=records, generation=generation, resync_required=False
            )

    def pending(self, subscription_id: int) -> int:
        """Records currently retained for one subscription."""
        with self._lock:
            log = self._logs.get(subscription_id)
            return len(log) if log is not None else 0

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def gauges(self) -> Dict[str, float]:
        with self._lock:
            return self._gauges_locked()

    def _gauges_locked(self) -> Dict[str, float]:
        coalesced = self._coalesced_retired + self._coalesced_live
        # per-poller backpressure: records still retained per subscription
        # = how far its consumer lags behind the head (acked records are
        # pruned on every poll, so an up-to-date poller holds zero)
        slowest = 0
        total_lag = 0
        for log in self._logs.values():
            lag = len(log)
            total_lag += lag
            if lag > slowest:
                slowest = lag
        return {
            "subscriptions_active": float(len(self._registry)),
            "deltas_emitted": float(self._deltas_emitted),
            "deltas_coalesced": float(coalesced),
            "catchup_resyncs": float(self._catchup_resyncs),
            "poller_lag": float(total_lag),
            "slowest_poller_lag": float(slowest),
            "backpressure_drops": float(self._backpressure_drops),
        }

    def _publish_gauges_locked(self) -> None:
        extras = getattr(getattr(self._store, "index", None), "stats_extras", None)
        if extras is not None:
            extras.update(self._gauges_locked())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"StandingQueryManager(subscriptions={len(self._registry)}, "
            f"deltas_emitted={self._deltas_emitted}, "
            f"seen_generation={self._seen_generation})"
        )
