"""A small JSON predicate grammar for wire-transported subscription filters.

Predicate subscriptions were Python-API-only: an arbitrary callable cannot
cross the HTTP surface.  This module defines the subset that can -- field
comparisons over ``start``, ``end`` and ``duration`` (``end - start``)
combined with ``and`` / ``or`` / ``not`` -- as plain JSON, compiled
server-side into the same ``Callable[[Interval], bool]`` shape the registry
already refines candidates with.

Grammar (one dict per node)::

    {"field": "duration", "op": ">=", "value": 10}          # leaf
    {"and": [spec, ...]}    {"or": [spec, ...]}             # n-ary
    {"not": spec}                                           # unary

Operators: ``eq ne lt le gt ge`` or their symbol forms
(``== != < <= > >=``).  Specs are validated and normalised (symbol ops
canonicalised) before compilation, so a spec that round-trips through a
checkpoint or the wire compares equal to the one that was registered.
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, List

from repro.core.errors import ReproError
from repro.core.interval import Interval

__all__ = [
    "FILTER_FIELDS",
    "FILTER_OPS",
    "FilterSpecError",
    "compile_filter",
    "describe_filter",
    "normalize_filter",
]

#: fields a leaf comparison may reference
FILTER_FIELDS = ("start", "end", "duration")

_SYMBOL_OPS = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}

#: canonical operator names
FILTER_OPS = ("eq", "ne", "lt", "le", "gt", "ge")

_OP_FUNCS: Dict[str, Callable[[int, int], bool]] = {
    "eq": operator.eq,
    "ne": operator.ne,
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
}

#: combinator nesting bound -- deep enough for any sane predicate, shallow
#: enough that a hostile spec cannot blow the recursion limit
_MAX_DEPTH = 16


class FilterSpecError(ReproError):
    """A filter spec that does not parse under the grammar."""


def _fail(message: str) -> "FilterSpecError":
    return FilterSpecError(f"bad filter spec: {message}")


def normalize_filter(spec: object, _depth: int = 0) -> Dict[str, object]:
    """Validate ``spec`` and return its canonical form.

    Raises :class:`FilterSpecError` on unknown fields/operators/combinators,
    non-integer values, empty combinator lists, or excessive nesting.  The
    canonical form uses named operators and is JSON-serialisable, which is
    what checkpoints persist and ``/subscribe`` echoes back.
    """
    if _depth > _MAX_DEPTH:
        raise _fail(f"nesting deeper than {_MAX_DEPTH}")
    if not isinstance(spec, dict):
        raise _fail(f"expected an object, got {type(spec).__name__}")
    combinators = [k for k in ("and", "or", "not") if k in spec]
    if combinators:
        if len(spec) != 1:
            raise _fail(
                f"combinator node must have exactly one key, got {sorted(spec)}"
            )
        kind = combinators[0]
        if kind == "not":
            return {"not": normalize_filter(spec["not"], _depth + 1)}
        children = spec[kind]
        if not isinstance(children, (list, tuple)) or not children:
            raise _fail(f'"{kind}" takes a non-empty list of specs')
        return {kind: [normalize_filter(child, _depth + 1) for child in children]}
    missing = [k for k in ("field", "op", "value") if k not in spec]
    if missing:
        raise _fail(f"leaf is missing {missing} (keys: {sorted(spec)})")
    extra = set(spec) - {"field", "op", "value"}
    if extra:
        raise _fail(f"leaf has unknown keys {sorted(extra)}")
    fieldname = spec["field"]
    if fieldname not in FILTER_FIELDS:
        raise _fail(
            f"unknown field {fieldname!r}; expected one of {FILTER_FIELDS}"
        )
    op = _SYMBOL_OPS.get(spec["op"], spec["op"])
    if op not in _OP_FUNCS:
        raise _fail(
            f"unknown operator {spec['op']!r}; expected one of "
            f"{FILTER_OPS} or {tuple(_SYMBOL_OPS)}"
        )
    value = spec["value"]
    if isinstance(value, bool) or not isinstance(value, int):
        raise _fail(f"value must be an integer, got {value!r}")
    return {"field": fieldname, "op": op, "value": int(value)}


def compile_filter(spec: object) -> Callable[[Interval], bool]:
    """Compile a (raw or normalised) spec into a predicate callable.

    The compiled closure is what :class:`~repro.stream.registry.Subscription`
    carries as its ``predicate``; the normalised spec rides alongside so the
    subscription survives checkpoints and the wire.
    """
    return _compile(normalize_filter(spec))


def _compile(spec: Dict[str, object]) -> Callable[[Interval], bool]:
    if "and" in spec:
        children = [_compile(child) for child in spec["and"]]
        return lambda interval: all(child(interval) for child in children)
    if "or" in spec:
        children = [_compile(child) for child in spec["or"]]
        return lambda interval: any(child(interval) for child in children)
    if "not" in spec:
        child = _compile(spec["not"])
        return lambda interval: not child(interval)
    fieldname, op, value = spec["field"], spec["op"], spec["value"]
    func = _OP_FUNCS[op]
    if fieldname == "duration":
        return lambda interval: func(interval.end - interval.start, value)
    if fieldname == "start":
        return lambda interval: func(interval.start, value)
    return lambda interval: func(interval.end, value)


def _describe(spec: Dict[str, object]) -> str:
    if "and" in spec:
        return "(" + " and ".join(_describe(c) for c in spec["and"]) + ")"
    if "or" in spec:
        return "(" + " or ".join(_describe(c) for c in spec["or"]) + ")"
    if "not" in spec:
        return f"(not {_describe(spec['not'])})"
    return f"{spec['field']} {spec['op']} {spec['value']}"


def describe_filter(spec: object) -> str:
    """Human-readable rendering (CLI/stats use this, not the wire)."""
    return _describe(normalize_filter(spec))
