"""The per-subscription delta log: bounded, sequence-numbered, replayable.

Each standing query owns one :class:`DeltaLog` of :class:`DeltaRecord`
entries -- the ``(generation, added_ids, removed_ids)`` changes the delta
engine emitted for it.  A reconnecting client replays the records *after*
its last-acked generation onto its local result set and is exact again,
without re-running the query.

The log is bounded, and degrades in two explicit stages instead of growing
without limit under a slow or absent consumer:

1. **Coalescing**: past ``capacity`` records, the two oldest are merged into
   one net-effect record (an id added then removed cancels out, and vice
   versa).  A coalesced record spans a generation *range*
   ``(first_generation, generation]``; replaying it is exact from any ack at
   or before ``first_generation``'s predecessor, but a client whose ack
   falls strictly *inside* the span can no longer be caught up exactly --
   :meth:`since` reports ``resync_required`` for it.
2. **Truncation**: when even the coalesced head record exceeds
   ``max_coalesced_ids`` ids, it is dropped outright and its generation
   recorded; any client acked before it gets ``resync_required``.

``resync_required`` is the signal to re-run the standing query from scratch
(re-subscribe) -- the server guarantees it never silently drops a delta a
catch-up would have needed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Tuple

__all__ = ["DeltaLog", "DeltaRecord"]


@dataclass(frozen=True)
class DeltaRecord:
    """One net change to a standing query's result set.

    Attributes:
        seq: per-subscription sequence number (monotonic, gap-free as
            emitted; coalescing keeps the *latest* seq of the merged pair).
        generation: the store's ``result_generation()`` after the last
            mutation folded into this record.
        first_generation: the generation of the *earliest* folded mutation;
            equals ``generation`` unless the record was coalesced.
        added: interval ids that newly match the standing query.
        removed: interval ids that no longer match.
    """

    seq: int
    generation: int
    first_generation: int
    added: Tuple[int, ...]
    removed: Tuple[int, ...]

    @property
    def coalesced(self) -> bool:
        """True when this record folds more than one mutation."""
        return self.first_generation != self.generation

    def merge(self, newer: "DeltaRecord") -> "DeltaRecord":
        """The net effect of this record followed by ``newer``.

        Ids added here and removed in ``newer`` (or removed here and
        re-added there) cancel, so the merged record is the exact membership
        change across both spans -- replayable from any state at or before
        this record's span.
        """
        newer_added, newer_removed = set(newer.added), set(newer.removed)
        own_added, own_removed = set(self.added), set(self.removed)
        added = tuple(i for i in self.added if i not in newer_removed) + tuple(
            i for i in newer.added if i not in own_removed
        )
        removed = tuple(i for i in self.removed if i not in newer_added) + tuple(
            i for i in newer.removed if i not in own_added
        )
        return DeltaRecord(
            seq=newer.seq,
            generation=newer.generation,
            first_generation=self.first_generation,
            added=added,
            removed=removed,
        )


class DeltaLog:
    """Bounded, sequence-numbered log of one subscription's deltas.

    Args:
        capacity: most records retained before the oldest pair is coalesced.
        max_coalesced_ids: id-payload bound on the coalesced head record;
            past it the head is truncated (dropped) instead of merged again,
            and catch-up from before it requires a resync.
    """

    __slots__ = (
        "_capacity",
        "_max_coalesced_ids",
        "_records",
        "_next_seq",
        "_truncated_generation",
        "coalesce_ops",
        "truncations",
    )

    def __init__(self, capacity: int = 256, max_coalesced_ids: int = 4096) -> None:
        if capacity < 2:
            raise ValueError(f"delta log capacity must be >= 2, got {capacity}")
        self._capacity = capacity
        self._max_coalesced_ids = max_coalesced_ids
        self._records: Deque[DeltaRecord] = deque()
        self._next_seq = 0
        #: highest generation dropped outright (-1: nothing truncated yet)
        self._truncated_generation = -1
        self.coalesce_ops = 0
        self.truncations = 0

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._records)

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def next_seq(self) -> int:
        return self._next_seq

    @property
    def last_generation(self) -> int:
        """Generation of the newest retained record (-1 when empty)."""
        return self._records[-1].generation if self._records else -1

    @property
    def truncated_generation(self) -> int:
        """Highest generation lost to truncation (-1: log is complete)."""
        return self._truncated_generation

    # ------------------------------------------------------------------ #
    def append(
        self, generation: int, added: Tuple[int, ...], removed: Tuple[int, ...]
    ) -> DeltaRecord:
        """Record one mutation's net effect; enforce the bounds."""
        record = DeltaRecord(
            seq=self._next_seq,
            generation=generation,
            first_generation=generation,
            added=tuple(added),
            removed=tuple(removed),
        )
        self._next_seq += 1
        self._records.append(record)
        self._squeeze()
        return record

    def _squeeze(self) -> None:
        while len(self._records) > self._capacity:
            head = self._records.popleft()
            if len(head.added) + len(head.removed) > self._max_coalesced_ids:
                # the head has already absorbed as much churn as the bound
                # allows: drop it and remember how far the hole reaches
                self._truncated_generation = max(
                    self._truncated_generation, head.generation
                )
                self.truncations += 1
                continue
            second = self._records.popleft()
            self._records.appendleft(head.merge(second))
            self.coalesce_ops += 1

    # ------------------------------------------------------------------ #
    def since(self, acked_generation: int) -> Tuple[List[DeltaRecord], bool]:
        """Records a client acked at ``acked_generation`` still needs.

        Returns ``(records, resync_required)``.  ``resync_required`` is True
        when exact catch-up is impossible: the log truncated past the ack,
        or the ack falls strictly inside a coalesced record's generation
        span (the merged net effect is only exact from the span's start).
        """
        if acked_generation < self._truncated_generation:
            return [], True
        records = [r for r in self._records if r.generation > acked_generation]
        if records and records[0].first_generation <= acked_generation:
            # the ack lands mid-span of a coalesced record: replaying the
            # merged net effect would re-apply mutations the client already
            # folded in a different order than they happened
            return [], True
        return records, False

    def mark_truncated(self, generation: int) -> None:
        """Declare generations at or below ``generation`` unreplayable.

        The recovery path uses this on restored subscription logs: deltas
        up to the checkpoint generation were delivered (or lost) before the
        crash and cannot be regenerated, so a client acked *below* the
        checkpoint must resync, while one acked at or past it catches up
        from the replayed tail exactly.
        """
        self._truncated_generation = max(self._truncated_generation, int(generation))

    def drop(self, generation: int) -> int:
        """Backpressure: discard every retained record outright.

        Used when a consumer has lagged past the manager's
        ``max_poller_lag`` bound: instead of coalescing an ever-larger head
        for a poller that is not coming back soon, the whole log is dropped
        and its span marked unreplayable -- the next poll reports
        ``resync_required``, and appends restart from empty.  Returns how
        many records were discarded.
        """
        dropped = len(self._records)
        floor = max(int(generation), self.last_generation)
        self._records.clear()
        self.mark_truncated(floor)
        self.truncations += 1
        return dropped

    def ack(self, acked_generation: int) -> int:
        """Drop records the client confirmed; returns how many were pruned."""
        pruned = 0
        while self._records and self._records[0].generation <= acked_generation:
            self._records.popleft()
            pruned += 1
        return pruned

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DeltaLog(records={len(self._records)}/{self._capacity}, "
            f"next_seq={self._next_seq}, coalesced={self.coalesce_ops}, "
            f"truncations={self.truncations})"
        )
