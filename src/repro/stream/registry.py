"""Standing-query subscriptions and the interval-indexed matcher.

A subscription *is* an interval -- its query range -- so "which standing
queries does this insert/delete affect" is itself an interval query.  The
registry stores the range of every routable subscription in its own
:class:`~repro.engine.store.IntervalStore` (an update-friendly backend, so
subscribe/unsubscribe are inserts/deletes into it) and routes one update
with one overlap probe: O(affected subscriptions), never a scan over all of
them.  Candidates from the probe are then refined per subscription (Allen
relation, duration filters, predicate), which is exact because every
relation a range probe can serve implies overlap
(:data:`repro.core.allen.RANGE_QUERY_RELATIONS`).

Two kinds of subscription cannot be range-pruned and live outside the index:

* relations whose matches never overlap the query range (``BEFORE``,
  ``AFTER``, ``MEETS``, ``MET_BY`` -- everything outside
  ``RANGE_QUERY_RELATIONS``) are kept on a side list checked on every
  update (O(unbounded subscriptions));
* below ``index_threshold`` total subscriptions the registry stays linear --
  building an index over a handful of ranges costs more than it saves.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.allen import RANGE_QUERY_RELATIONS, AllenRelation, satisfies_relation
from repro.core.errors import ReproError
from repro.core.interval import Interval, IntervalCollection, Query
from repro.obs import global_registry
from repro.stream.filters import compile_filter, normalize_filter

#: process-global: standing queries ever registered (active counts are
#: gauges on the owning manager, surfaced via the servers' /metrics)
_SUBSCRIPTIONS = global_registry().counter(
    "repro_subscriptions_total", "standing queries registered"
)

__all__ = ["Subscription", "SubscriptionRegistry", "parse_relation"]


def parse_relation(relation: "AllenRelation | str | None") -> Optional[AllenRelation]:
    """Normalise a relation spec (enum, wire name, or None)."""
    if relation is None or isinstance(relation, AllenRelation):
        return relation
    try:
        return AllenRelation(str(relation).strip().lower().replace("-", "_"))
    except ValueError:
        names = ", ".join(sorted(r.value for r in AllenRelation))
        raise ReproError(
            f"unknown Allen relation {relation!r}; expected one of: {names}"
        ) from None


@dataclass(frozen=True)
class Subscription:
    """One registered standing query.

    Attributes:
        subscription_id: registry-assigned id (also the id of the range
            interval in the matching index).
        query: the standing range/stabbing query.
        relation: optional Allen-relation refinement ("interval RELATION
            query", as in :meth:`repro.engine.store.QueryBuilder.relation`).
        min_duration / max_duration: optional bounds on the matched
            interval's length (``end - start``).
        predicate: optional extra filter over matched intervals.  Arbitrary
            callables are Python-API-only; filters registered through the
            JSON DSL compile to a predicate *and* keep their spec in
            ``filter_spec``.
        filter_spec: the normalised JSON filter this predicate was compiled
            from (:mod:`repro.stream.filters`), or ``None`` for a plain
            callable.  A subscription with a ``filter_spec`` survives the
            wire and checkpoints; one with only a callable does not.
    """

    subscription_id: int
    query: Query
    relation: Optional[AllenRelation] = None
    min_duration: int = 0
    max_duration: Optional[int] = None
    predicate: Optional[Callable[[Interval], bool]] = field(
        default=None, compare=False
    )
    filter_spec: Optional[dict] = field(default=None, compare=False)

    @property
    def range_prunable(self) -> bool:
        """True when every match overlaps the query range (indexable)."""
        return self.relation is None or self.relation in RANGE_QUERY_RELATIONS

    def matches(self, interval: Interval) -> bool:
        """Exact membership test for one data interval."""
        length = interval.end - interval.start
        if length < self.min_duration:
            return False
        if self.max_duration is not None and length > self.max_duration:
            return False
        if self.relation is not None:
            if not satisfies_relation(interval, self.query, self.relation):
                return False
        elif not (
            interval.start <= self.query.end and self.query.start <= interval.end
        ):
            return False
        return self.predicate is None or bool(self.predicate(interval))


def _resolve_filter(
    predicate: Optional[Callable[[Interval], bool]],
    filter_spec: Optional[dict],
):
    """Normalise/compile a filter spec into the predicate slot."""
    if filter_spec is None:
        return predicate, None
    if predicate is not None:
        raise ReproError(
            "pass either a predicate callable or a filter spec, not both"
        )
    spec = normalize_filter(filter_spec)
    return compile_filter(spec), spec


class SubscriptionRegistry:
    """The subscription set plus its interval-indexed matcher.

    Args:
        index_backend: backend for the matching index; must support
            insert/delete (subscribe/unsubscribe mutate it in place).
        index_threshold: subscription count below which matching stays a
            linear scan instead of building the index.
    """

    def __init__(
        self, index_backend: str = "hintm_hybrid", index_threshold: int = 64
    ) -> None:
        self._index_backend = index_backend
        self._index_threshold = max(2, index_threshold)
        self._subscriptions: Dict[int, Subscription] = {}
        #: non-range-prunable relations, matched by scan (kept small)
        self._unbounded: Dict[int, Subscription] = {}
        self._store = None  # built lazily past the threshold
        self._next_id = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._subscriptions)

    def __contains__(self, subscription_id: int) -> bool:
        return subscription_id in self._subscriptions

    def get(self, subscription_id: int) -> Optional[Subscription]:
        return self._subscriptions.get(subscription_id)

    def ids(self) -> List[int]:
        return sorted(self._subscriptions)

    @property
    def indexed(self) -> bool:
        """True once the matching index has been built."""
        return self._store is not None

    # ------------------------------------------------------------------ #
    def register(
        self,
        query: Query,
        *,
        relation: "AllenRelation | str | None" = None,
        min_duration: int = 0,
        max_duration: Optional[int] = None,
        predicate: Optional[Callable[[Interval], bool]] = None,
        filter_spec: Optional[dict] = None,
    ) -> Subscription:
        """Add one standing query; returns the assigned subscription.

        ``filter_spec`` (a JSON predicate, :mod:`repro.stream.filters`) and
        ``predicate`` (an arbitrary callable) are mutually exclusive: the
        spec compiles *into* the predicate slot.
        """
        relation = parse_relation(relation)
        predicate, filter_spec = _resolve_filter(predicate, filter_spec)
        with self._lock:
            subscription = Subscription(
                subscription_id=self._next_id,
                query=query,
                relation=relation,
                min_duration=min_duration,
                max_duration=max_duration,
                predicate=predicate,
                filter_spec=filter_spec,
            )
            self._next_id += 1
            self._subscriptions[subscription.subscription_id] = subscription
            _SUBSCRIPTIONS.inc()
            if not subscription.range_prunable:
                self._unbounded[subscription.subscription_id] = subscription
            elif self._store is not None:
                self._store.insert(
                    Interval(subscription.subscription_id, query.start, query.end)
                )
            elif (
                len(self._subscriptions) - len(self._unbounded)
                >= self._index_threshold
            ):
                self._build_index()
            return subscription

    def restore(
        self,
        subscription_id: int,
        query: Query,
        *,
        relation: "AllenRelation | str | None" = None,
        min_duration: int = 0,
        max_duration: Optional[int] = None,
        filter_spec: Optional[dict] = None,
    ) -> Subscription:
        """Re-register a checkpointed subscription under its original id.

        The recovery path replays the subscription registry from a
        checkpoint; keeping the pre-crash ids is what lets a reconnecting
        client keep polling the subscription it already holds.  Fresh
        registrations continue past the highest restored id.  A persisted
        ``filter_spec`` is recompiled into the predicate it came from.
        """
        relation = parse_relation(relation)
        predicate, filter_spec = _resolve_filter(None, filter_spec)
        with self._lock:
            if subscription_id in self._subscriptions:
                raise ReproError(
                    f"subscription {subscription_id} already registered; "
                    "restore() is for recovery into a fresh registry"
                )
            subscription = Subscription(
                subscription_id=int(subscription_id),
                query=query,
                relation=relation,
                min_duration=min_duration,
                max_duration=max_duration,
                predicate=predicate,
                filter_spec=filter_spec,
            )
            self._next_id = max(self._next_id, subscription.subscription_id + 1)
            self._subscriptions[subscription.subscription_id] = subscription
            if not subscription.range_prunable:
                self._unbounded[subscription.subscription_id] = subscription
            elif self._store is not None:
                self._store.insert(
                    Interval(subscription.subscription_id, query.start, query.end)
                )
            elif (
                len(self._subscriptions) - len(self._unbounded)
                >= self._index_threshold
            ):
                self._build_index()
            return subscription

    def unregister(self, subscription_id: int) -> bool:
        """Remove a subscription; True when it existed."""
        with self._lock:
            subscription = self._subscriptions.pop(subscription_id, None)
            if subscription is None:
                return False
            self._unbounded.pop(subscription_id, None)
            if self._store is not None and subscription.range_prunable:
                self._store.delete(subscription_id)
            return True

    def _build_index(self) -> None:
        from repro.engine.store import IntervalStore

        ranges = [
            Interval(s.subscription_id, s.query.start, s.query.end)
            for s in self._subscriptions.values()
            if s.range_prunable
        ]
        self._store = IntervalStore.open(
            IntervalCollection.from_intervals(ranges), self._index_backend
        )

    # ------------------------------------------------------------------ #
    def affected(self, interval: Interval) -> List[Subscription]:
        """Subscriptions whose result set changes when ``interval`` is
        inserted or deleted -- one overlap probe plus per-candidate
        refinement, O(affected)."""
        with self._lock:
            if self._store is not None:
                candidate_ids = self._store.query().overlapping(
                    interval.start, interval.end
                ).ids()
                candidates = [
                    s
                    for s in (self._subscriptions.get(i) for i in candidate_ids)
                    if s is not None
                ]
            else:
                candidates = [
                    s
                    for s in self._subscriptions.values()
                    if s.range_prunable
                ]
            candidates.extend(self._unbounded.values())
        return [s for s in candidates if s.matches(interval)]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SubscriptionRegistry(n={len(self._subscriptions)}, "
            f"indexed={self.indexed}, unbounded={len(self._unbounded)})"
        )
