"""Shared fixtures for the HINT reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.interval import Interval, IntervalCollection, Query
from repro.datasets.real_like import generate_books_like, generate_taxis_like
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic
from repro.queries.generator import QueryWorkloadConfig, generate_queries


@pytest.fixture(scope="session")
def tiny_collection() -> IntervalCollection:
    """A handful of hand-picked intervals covering the paper's running examples."""
    return IntervalCollection.from_intervals(
        [
            Interval(0, 5, 9),     # the paper's [5, 9] example
            Interval(1, 0, 15),    # spans the whole domain
            Interval(2, 3, 3),     # point interval
            Interval(3, 10, 12),
            Interval(4, 7, 8),
            Interval(5, 14, 15),
            Interval(6, 0, 0),
            Interval(7, 8, 13),
        ]
    )


@pytest.fixture(scope="session")
def synthetic_collection() -> IntervalCollection:
    """A moderate synthetic dataset (Table 5 generator, scaled down)."""
    return generate_synthetic(
        SyntheticConfig(domain_length=60_000, cardinality=3_000, alpha=1.2, sigma=6_000, seed=17)
    )


@pytest.fixture(scope="session")
def books_like_collection() -> IntervalCollection:
    """A BOOKS-like dataset: long intervals relative to the domain."""
    return generate_books_like(cardinality=2_000, seed=23)


@pytest.fixture(scope="session")
def taxis_like_collection() -> IntervalCollection:
    """A TAXIS-like dataset: very short intervals, skewed positions."""
    return generate_taxis_like(cardinality=3_000, seed=29)


@pytest.fixture(scope="session")
def synthetic_queries(synthetic_collection) -> list[Query]:
    """A mixed workload of range and stabbing queries over the synthetic data."""
    ranged = generate_queries(
        synthetic_collection,
        QueryWorkloadConfig(count=120, extent_fraction=0.01, placement="data", seed=31),
    )
    stabbing = generate_queries(
        synthetic_collection, QueryWorkloadConfig(count=60, extent_fraction=0.0, seed=37)
    )
    wide = generate_queries(
        synthetic_collection, QueryWorkloadConfig(count=20, extent_fraction=0.2, seed=41)
    )
    return ranged + stabbing + wide


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(4242)
