"""Unit and property tests for Allen's interval algebra (repro.core.allen)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allen import (
    RANGE_QUERY_RELATIONS,
    AllenRelation,
    allen_relation,
    filter_by_relation,
    satisfies_relation,
)
from repro.core.interval import Interval, Query


def make(a, b, c, d):
    return Interval(0, a, b), Query(c, d)


class TestIndividualRelations:
    def test_before(self):
        s, q = make(1, 3, 5, 9)
        assert allen_relation(s, q) is AllenRelation.BEFORE

    def test_meets(self):
        s, q = make(1, 5, 5, 9)
        assert allen_relation(s, q) is AllenRelation.MEETS

    def test_overlaps(self):
        s, q = make(1, 6, 5, 9)
        assert allen_relation(s, q) is AllenRelation.OVERLAPS

    def test_starts(self):
        s, q = make(5, 7, 5, 9)
        assert allen_relation(s, q) is AllenRelation.STARTS

    def test_during(self):
        s, q = make(6, 8, 5, 9)
        assert allen_relation(s, q) is AllenRelation.DURING

    def test_finishes(self):
        s, q = make(7, 9, 5, 9)
        assert allen_relation(s, q) is AllenRelation.FINISHES

    def test_equals(self):
        s, q = make(5, 9, 5, 9)
        assert allen_relation(s, q) is AllenRelation.EQUALS

    def test_finished_by(self):
        s, q = make(3, 9, 5, 9)
        assert allen_relation(s, q) is AllenRelation.FINISHED_BY

    def test_contains(self):
        s, q = make(3, 11, 5, 9)
        assert allen_relation(s, q) is AllenRelation.CONTAINS

    def test_started_by(self):
        s, q = make(5, 11, 5, 9)
        assert allen_relation(s, q) is AllenRelation.STARTED_BY

    def test_overlapped_by(self):
        s, q = make(7, 11, 5, 9)
        assert allen_relation(s, q) is AllenRelation.OVERLAPPED_BY

    def test_met_by(self):
        s, q = make(9, 11, 5, 9)
        assert allen_relation(s, q) is AllenRelation.MET_BY

    def test_after(self):
        s, q = make(10, 12, 5, 9)
        assert allen_relation(s, q) is AllenRelation.AFTER


class TestDegenerateIntervals:
    def test_point_interval_starts(self):
        s, q = make(5, 5, 5, 9)
        assert allen_relation(s, q) is AllenRelation.STARTS

    def test_point_interval_finishes(self):
        s, q = make(9, 9, 5, 9)
        assert allen_relation(s, q) is AllenRelation.FINISHES

    def test_point_query_started_by(self):
        s, q = make(5, 9, 5, 5)
        assert allen_relation(s, q) is AllenRelation.STARTED_BY

    def test_point_query_finished_by(self):
        s, q = make(2, 5, 5, 5)
        assert allen_relation(s, q) is AllenRelation.FINISHED_BY

    def test_point_equals_point(self):
        s, q = make(5, 5, 5, 5)
        assert allen_relation(s, q) is AllenRelation.EQUALS


class TestRelationSets:
    def test_range_query_relations_exclude_disjoint(self):
        assert AllenRelation.BEFORE not in RANGE_QUERY_RELATIONS
        assert AllenRelation.AFTER not in RANGE_QUERY_RELATIONS
        assert len(RANGE_QUERY_RELATIONS) == 11

    def test_overlap_iff_relation_in_range_set(self):
        q = Query(5, 9)
        for a in range(0, 13):
            for b in range(a, 13):
                s = Interval(0, a, b)
                relation = allen_relation(s, q)
                assert (relation in RANGE_QUERY_RELATIONS) == s.overlaps(q)

    def test_filter_by_relation(self):
        q = Query(5, 10)
        intervals = [Interval(i, i, i + 3) for i in range(0, 12)]
        during = filter_by_relation(intervals, q, AllenRelation.DURING)
        assert [s.id for s in during] == [6]
        before = filter_by_relation(intervals, q, AllenRelation.BEFORE)
        assert all(s.end < q.start for s in before)


@settings(max_examples=300, deadline=None)
@given(
    a=st.integers(0, 30),
    length_s=st.integers(0, 30),
    c=st.integers(0, 30),
    length_q=st.integers(0, 30),
)
def test_relations_are_exhaustive_and_mutually_exclusive(a, length_s, c, length_q):
    """Exactly one Allen relation holds for any pair of (possibly point) intervals."""
    s = Interval(0, a, a + length_s)
    q = Query(c, c + length_q)
    matches = [r for r in AllenRelation if satisfies_relation(s, q, r)]
    assert len(matches) == 1
    assert allen_relation(s, q) is matches[0]


@settings(max_examples=200, deadline=None)
@given(
    a=st.integers(0, 30),
    length_s=st.integers(1, 30),
    c=st.integers(0, 30),
    length_q=st.integers(1, 30),
)
def test_inverse_relations_for_proper_intervals(a, length_s, c, length_q):
    """Swapping the roles of interval and query yields the inverse relation."""
    inverse = {
        AllenRelation.BEFORE: AllenRelation.AFTER,
        AllenRelation.MEETS: AllenRelation.MET_BY,
        AllenRelation.OVERLAPS: AllenRelation.OVERLAPPED_BY,
        AllenRelation.STARTS: AllenRelation.STARTED_BY,
        AllenRelation.DURING: AllenRelation.CONTAINS,
        AllenRelation.FINISHES: AllenRelation.FINISHED_BY,
        AllenRelation.EQUALS: AllenRelation.EQUALS,
    }
    inverse.update({v: k for k, v in list(inverse.items())})
    s = Interval(0, a, a + length_s)
    q = Query(c, c + length_q)
    forward = allen_relation(s, q)
    backward = allen_relation(Interval(0, q.start, q.end), Query(s.start, s.end))
    assert inverse[forward] is backward
