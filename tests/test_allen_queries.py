"""Tests for Allen-relation selection queries served through the indexes.

The paper lists Allen-algebra selections as the natural extension of range
queries (Section 1 and the conclusions); the library answers them by refining
the range-query candidates of any index.
"""

import pytest

from repro.baselines.naive import NaiveIndex
from repro.core.allen import AllenRelation, satisfies_relation
from repro.core.interval import Query
from repro.hint import OptimizedHINTm, SubdividedHINTm


def oracle_relation(collection, query, relation):
    return sorted(
        s.id for s in collection if satisfies_relation(s, query, relation)
    )


@pytest.mark.parametrize(
    "relation",
    [
        AllenRelation.DURING,
        AllenRelation.CONTAINS,
        AllenRelation.OVERLAPS,
        AllenRelation.OVERLAPPED_BY,
        AllenRelation.STARTS,
        AllenRelation.FINISHES,
        AllenRelation.EQUALS,
        AllenRelation.MEETS,
        AllenRelation.MET_BY,
    ],
)
def test_overlap_relations_match_oracle(synthetic_collection, relation):
    index = OptimizedHINTm(synthetic_collection, num_bits=9)
    lo, hi = synthetic_collection.span()
    span = hi - lo
    for i in range(5):
        start = lo + i * span // 5
        query = Query(start, min(hi, start + span // 20))
        assert sorted(index.query_relation(query, relation)) == oracle_relation(
            synthetic_collection, query, relation
        )


@pytest.mark.parametrize("relation", [AllenRelation.BEFORE, AllenRelation.AFTER])
def test_disjoint_relations_fall_back_to_scan(synthetic_collection, relation):
    index = SubdividedHINTm(synthetic_collection, num_bits=8)
    lo, hi = synthetic_collection.span()
    query = Query(lo + (hi - lo) // 2, lo + (hi - lo) // 2 + 100)
    assert sorted(index.query_relation(query, relation)) == oracle_relation(
        synthetic_collection, query, relation
    )


def test_relation_results_subset_of_range_results(synthetic_collection):
    index = OptimizedHINTm(synthetic_collection, num_bits=9)
    lo, hi = synthetic_collection.span()
    query = Query(lo + (hi - lo) // 3, lo + (hi - lo) // 2)
    range_results = set(index.query(query))
    for relation in (AllenRelation.DURING, AllenRelation.CONTAINS, AllenRelation.OVERLAPS):
        assert set(index.query_relation(query, relation)) <= range_results


def test_relations_partition_the_range_results(synthetic_collection):
    """Each range-query result satisfies exactly one overlapping relation."""
    from repro.core.allen import RANGE_QUERY_RELATIONS

    index = OptimizedHINTm(synthetic_collection, num_bits=9)
    naive = NaiveIndex.build(synthetic_collection)
    lo, hi = synthetic_collection.span()
    query = Query(lo + (hi - lo) // 4, lo + (hi - lo) // 3)
    range_results = sorted(index.query(query))
    assert range_results == sorted(naive.query(query))
    per_relation = [
        index.query_relation(query, relation) for relation in RANGE_QUERY_RELATIONS
    ]
    flattened = sorted(sid for results in per_relation for sid in results)
    assert flattened == range_results
