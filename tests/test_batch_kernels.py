"""Worker-side batch kernels: equivalence, delta shipping, per-worker healing.

The kernel PR's correctness matrix:

* batched count/exists/ids answers equal the serial oracle across backends,
  shard counts and both start methods -- including with pending updates,
  which counting kernels absorb by folding the shipped delta log
  worker-side instead of falling back to the parent;
* a killed worker degrades *per worker*: the pool respawns, the batch
  retries and answers correctly, and the index-wide ``_fanout_disabled``
  flag only trips when every worker path is exhausted;
* a batch confined to one shard still splits across the pool (the old
  lone-task fallback ran it serially in the parent);
* fan-out health (``fanout_disabled``, ``kernel_retries``, delta depth,
  per-worker residencies) is surfaced through stats extras and
  ``maintenance_state``.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.core.interval import HAS_SHARED_MEMORY, Interval, Query
from repro.engine import (
    ProcessExecutor,
    ShardedIndex,
    ShardedStore,
    available_backends,
    get_spec,
)
from repro.engine.sharded import _KERNEL_DELTA_CAP

pytestmark = pytest.mark.skipif(
    not HAS_SHARED_MEMORY, reason="no multiprocessing.shared_memory"
)

ALL_BACKENDS = [name for name in available_backends() if not get_spec(name).composite]

SMALL_KWARGS = {
    "grid1d": {"num_partitions": 32},
    "timeline": {"num_checkpoints": 16},
    "period": {"num_coarse_partitions": 8, "num_levels": 3},
    "hintm": {"num_bits": 7},
    "hintm_sub": {"num_bits": 7},
    "hintm_opt": {"num_bits": 7},
    "hintm_hybrid": {"num_bits": 7},
}


@pytest.fixture(scope="module")
def pool():
    executor = ProcessExecutor(2)
    yield executor
    executor.close()


def _count_workload(collection, rng, count=40):
    lo, hi = collection.span()
    spread = max((hi - lo) // 2, 1)
    queries = []
    for _ in range(count):
        start = int(rng.integers(lo - 10, hi + 10))
        queries.append(Query(start, start + int(rng.integers(0, spread))))
    return queries


class TestCountingKernelEquivalence:
    """Kernel counts/exists == the serial oracle, shard plan by shard plan."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_every_backend_at_k4(self, synthetic_collection, rng, pool, backend):
        kwargs = dict(SMALL_KWARGS.get(backend, {}))
        index = ShardedIndex(
            synthetic_collection, backend=backend, num_shards=4, executor=pool, **kwargs
        )
        try:
            queries = _count_workload(synthetic_collection, rng)
            expected = [len(synthetic_collection.query_ids(q)) for q in queries]
            assert index.query_count_batch(queries) == expected, backend
            assert index.query_exists_batch(queries) == [
                count > 0 for count in expected
            ], backend
            assert index.count_ops["kernel_batch"] > 0
        finally:
            index.close()

    @pytest.mark.parametrize("num_shards", [1, 2, 4, 7])
    def test_shard_counts(self, synthetic_collection, rng, pool, num_shards):
        index = ShardedIndex(
            synthetic_collection, backend="naive", num_shards=num_shards, executor=pool
        )
        try:
            queries = _count_workload(synthetic_collection, rng)
            assert index.query_count_batch(queries) == [
                len(synthetic_collection.query_ids(q)) for q in queries
            ], num_shards
        finally:
            index.close()

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_start_methods_with_pending_updates(self, synthetic_collection, rng, method):
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {method!r} unavailable")
        with ProcessExecutor(2, start_method=method) as executor:
            index = ShardedIndex(
                synthetic_collection, backend="naive", num_shards=4, executor=executor
            )
            try:
                lo, hi = synthetic_collection.span()
                next_id = int(synthetic_collection.ids.max()) + 1
                for i in range(60):
                    start = int(rng.integers(lo, hi))
                    index.insert(Interval(next_id + i, start, start + 500))
                for victim in synthetic_collection.ids[:30]:
                    assert index.delete(int(victim))
                assert index.update_dirty  # materialising fan-out is stale...
                assert index.kernel_delta_depth() > 0  # ...kernels are not
                queries = _count_workload(synthetic_collection, rng)
                before = index.count_ops["kernel_batch"]
                counts = index.query_count_batch(queries)
                serial = [index._query_count_epoch(index._epoch, q) for q in queries]
                assert counts == serial
                assert index.count_ops["kernel_batch"] > before
                assert not index._fanout_disabled
            finally:
                index.close()

    def test_delta_log_overflow_falls_back_to_parent(self, synthetic_collection, rng, pool):
        index = ShardedIndex(
            synthetic_collection, backend="naive", num_shards=4, executor=pool
        )
        try:
            # simulate a cap'd log: the snapshot refuses and the parent path
            # answers -- correctly -- until the next publication
            index._kernel_deltas = None
            queries = _count_workload(synthetic_collection, rng, count=10)
            before = index.count_ops["kernel_batch"]
            assert index.query_count_batch(queries) == [
                len(synthetic_collection.query_ids(q)) for q in queries
            ]
            assert index.count_ops["kernel_batch"] == before
            assert index.refresh_snapshot()  # publication restarts the log
            assert index._kernel_deltas is not None
            index.query_count_batch(queries)
            assert index.count_ops["kernel_batch"] > before
        finally:
            index.close()

    def test_cap_drops_log_after_many_updates(self, synthetic_collection, pool):
        index = ShardedIndex(
            synthetic_collection, backend="naive", num_shards=2, executor=pool
        )
        try:
            lo, hi = synthetic_collection.span()
            next_id = int(synthetic_collection.ids.max()) + 1
            mid = (lo + hi) // 2
            for i in range(_KERNEL_DELTA_CAP + 1):
                index.insert(Interval(next_id + i, mid, mid + 1))
            assert index._kernel_deltas is None
            assert index.kernel_delta_depth() == 0
        finally:
            index.close()

    def test_delta_key_is_pair_and_writer_versions_appends(
        self, synthetic_collection, pool
    ):
        """Seqlock regression: every committed append bumps the writer-side
        version, and the shipped fold-cache key is the (adds, dels) *pair*
        -- a torn (n, m+1) state and a consistent (n+1, m) state must never
        share a cache key."""
        index = ShardedIndex(
            synthetic_collection, backend="naive", num_shards=2, executor=pool
        )
        try:
            lo, _ = synthetic_collection.span()
            next_id = int(synthetic_collection.ids.max()) + 1
            before = index._kernel_delta_version
            index.insert(Interval(next_id, lo, lo + 1))
            assert index._kernel_delta_version == before + 1
            snap = index._kernel_snapshot(index._epoch)
            assert snap is not None
            keys = [deltas[0] for deltas in snap[1] if deltas is not None]
            assert keys == [(1, 0)]
            assert index.delete(next_id)
            assert index._kernel_delta_version == before + 2
            snap = index._kernel_snapshot(index._epoch)
            keys = [deltas[0] for deltas in snap[1] if deltas is not None]
            assert keys == [(1, 1)]
        finally:
            index.close()

    def test_unresolvable_delete_drops_delta_log(
        self, synthetic_collection, rng, pool, monkeypatch
    ):
        """K == 1, R == 1: no locator, so the deleted span comes from the
        shard's interval lookup.  When that lookup fails but the delete
        succeeds, the delta log can no longer patch the worker-resident
        columns -- it must be dropped so counting batches fall back to the
        exact parent path instead of serving stale counts."""
        index = ShardedIndex(
            synthetic_collection, backend="naive", num_shards=1, executor=pool
        )
        try:
            assert index._epoch.locator is None
            assert index._kernel_deltas is not None
            primary = index._epoch.replica_sets[0].primary()
            monkeypatch.setattr(primary, "_resolve_interval", lambda interval_id: None)
            victim = int(synthetic_collection.ids[0])
            assert index.delete(victim)
            assert index._kernel_deltas is None
            queries = _count_workload(synthetic_collection, rng, count=10)
            assert index.query_count_batch(queries) == [
                len(set(synthetic_collection.query_ids(q).tolist()) - {victim})
                for q in queries
            ]
        finally:
            index.close()


class TestMaterialisingKernels:
    """ids_batch via the kernel dispatcher, including the single-shard split."""

    def test_single_shard_batch_splits_across_workers(self, synthetic_collection, rng):
        class _CountingPool(ProcessExecutor):
            def __init__(self):
                super().__init__(workers=2)
                self.submitted = 0

            def submit(self, fn, item):
                self.submitted += 1
                return super().submit(fn, item)

        executor = _CountingPool()
        index = ShardedIndex(
            synthetic_collection, backend="naive", num_shards=4, executor=executor
        )
        try:
            # confine every query to the first shard's range
            cuts = index.plan.cuts
            lo, _ = synthetic_collection.span()
            hi = int(cuts[0]) - 1
            queries = [
                Query(int(a), min(int(a) + 40, hi))
                for a in rng.integers(lo, hi - 40, size=8)
            ]
            for q in queries:
                first, last = index.plan.shard_range(q.start, q.end)
                assert first == last == 0
            answers = index.query_batch(queries)
            assert executor.submitted >= 2, (
                "a single-shard batch with several queries must split across "
                "the pool, not run serially in the parent"
            )
            for q, ids in zip(queries, answers):
                assert sorted(ids) == sorted(synthetic_collection.query_ids(q).tolist())
        finally:
            index.close()
            executor.close()

    def test_multi_shard_merge_matches_serial_order(self, synthetic_collection, rng, pool):
        index = ShardedIndex(
            synthetic_collection, backend="naive", num_shards=4, executor=pool
        )
        try:
            lo, hi = synthetic_collection.span()
            broad = [Query(lo, hi), Query(lo + 1, hi - 1), Query(lo, (lo + hi) // 2)]
            padding = _count_workload(synthetic_collection, rng, count=5)
            answers = index.query_batch(broad + padding)
            for q, ids in zip(broad, answers):
                assert len(ids) == len(set(ids))  # deduped across shards
                # order-identical to the serial path (merge_unique_ids
                # first-seen order), so answers do not flip ordering when
                # fan-out is disabled or a task degrades
                assert ids == index.query(q)
                assert sorted(ids) == sorted(synthetic_collection.query_ids(q).tolist())
        finally:
            index.close()


class TestPerWorkerHealing:
    """A dead worker degrades per worker, never index-wide."""

    def _index(self, collection, executor):
        return ShardedIndex(collection, backend="naive", num_shards=4, executor=executor)

    def test_killed_worker_heals_and_answers(self, synthetic_collection, rng):
        executor = ProcessExecutor(2)
        index = self._index(synthetic_collection, executor)
        try:
            queries = _count_workload(synthetic_collection, rng)
            expected = [len(synthetic_collection.query_ids(q)) for q in queries]
            index.query_count_batch(queries)  # warm the pool
            pids = list(index.worker_residencies().keys())
            assert pids, "expected worker residencies after a warm batch"
            os.kill(pids[0], signal.SIGKILL)
            time.sleep(0.2)
            assert index.query_count_batch(queries) == expected
            assert index.kernel_retries > 0
            assert not index._fanout_disabled, (
                "a single worker kill must heal per-worker, not trip the "
                "index-wide fan-out flag"
            )
            # the healed pool keeps serving both kernel families
            answers = index.query_batch(queries)
            for q, ids in zip(queries, answers):
                assert sorted(ids) == sorted(synthetic_collection.query_ids(q).tolist())
            assert not index._fanout_disabled
        finally:
            index.close()
            executor.close()

    def test_fanout_trips_only_when_every_path_is_exhausted(
        self, synthetic_collection, rng
    ):
        class _DeadPool(ProcessExecutor):
            """Submits fail before and after respawn: no worker path left."""

            def __init__(self):
                super().__init__(workers=2)
                self.respawns = 0

            def submit(self, fn, item):
                raise BrokenPipeError("worker died mid-batch")

            def respawn(self, token=None):
                self.respawns += 1
                super().respawn(token)

        executor = _DeadPool()
        index = self._index(synthetic_collection, executor)
        try:
            queries = _count_workload(synthetic_collection, rng, count=12)
            counts = index.query_count_batch(queries)
            # the batch still answers -- per (query, shard) fallback ...
            assert counts == [
                len(synthetic_collection.query_ids(q)) for q in queries
            ]
            # ... healing was attempted first, then the flag tripped
            assert executor.respawns == 1
            assert index.kernel_retries > 0
            assert index._fanout_disabled
            failures = index.recent_failures()
            assert failures and failures[-1].shard_id == -1
        finally:
            index.close()
            executor.close()

    def test_shared_pool_respawn_is_token_coordinated(self):
        """A stale pool token must not churn a pool another index already
        healed -- the failing index just retries on the fresh workers."""
        executor = ProcessExecutor(2)
        try:
            token = executor.pool_token()
            executor.respawn()  # another index healed the shared pool first
            healed = executor.pool_token()
            assert healed != token
            executor.respawn(token)  # stale observation: must be a no-op
            assert executor.pool_token() == healed
            executor.respawn(healed)  # current observation: heals as usual
            assert executor.pool_token() != healed
        finally:
            executor.close()


class TestKernelObservability:
    def test_stats_and_state_surface_fanout_health(self, synthetic_collection, rng, pool):
        index = ShardedIndex(
            synthetic_collection, backend="naive", num_shards=4, executor=pool
        )
        try:
            _, stats = index.query_with_stats(Query(*synthetic_collection.span()))
            assert stats.extra["fanout_disabled"] == 0.0
            assert stats.extra["kernel_retries"] == 0.0
            state = index.maintenance_state()
            assert state["fanout_disabled"] is False
            assert state["kernel_retries"] == 0
            assert state["kernel_delta_depth"] == 0
            index.query_count_batch(_count_workload(synthetic_collection, rng))
            residencies = index.worker_residencies()
            assert residencies, "a warm pool should report resident tokens"
            for pid, tokens in residencies.items():
                assert isinstance(pid, int)
            # the pool is shared across tests, so other uids may be resident
            # too -- but at least one worker must hold *this* index's columns
            assert any(
                index._uid in token
                for tokens in residencies.values()
                for token in tokens
            )
        finally:
            index.close()

    def test_store_count_batches_ride_kernels(self, synthetic_collection, rng, pool):
        store = ShardedStore.open(
            synthetic_collection, "naive", num_shards=4, executor=pool
        )
        try:
            queries = _count_workload(synthetic_collection, rng, count=16)
            before = store.index.count_ops["kernel_batch"]
            batch = store.run_batch(queries, count_only=True)
            assert store.index.count_ops["kernel_batch"] > before
            assert batch.counts == [
                len(synthetic_collection.query_ids(q)) for q in queries
            ]
            # the convenience surfaces route the same way
            assert store.count_batch(queries) == batch.counts
            assert store.exists_batch(queries) == [c > 0 for c in batch.counts]
        finally:
            store.close()
