"""Acceptance gate: worker-resident counting kernels beat the parent path.

Runs :func:`repro.bench.experiments.batch_kernels` at the acceptance scale
(100k intervals, K=4, 400 pending updates so the delta-fold path is what is
being measured, not the clean-snapshot fast case) and asserts the kernel
path's batched ``query_count`` throughput is a multiple of the parent-side
home-shard path.  Correctness (kernel answers == serial answers) is asserted
inside the experiment driver itself before any timing starts.

Like ``tests/test_process_scaling_benchmark.py``, the speedup gate needs
real parallel hardware: on a <2-core runner the workers time-slice a single
core and the gate skips -- reporting the measured ratio so a CI log still
shows what this box achieved.
"""

import os

import pytest

from repro.bench.experiments import batch_kernels
from repro.core.interval import HAS_SHARED_MEMORY

pytestmark = pytest.mark.skipif(
    not HAS_SHARED_MEMORY, reason="no multiprocessing.shared_memory"
)

CARDINALITY = 100_000
NUM_QUERIES = 400
NUM_UPDATES = 400


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def kernel_rows():
    result = batch_kernels(
        cardinality=CARDINALITY,
        num_queries=NUM_QUERIES,
        num_updates=NUM_UPDATES,
        backends=("hintm",),
    )
    return result["count"]


def test_rows_cover_both_paths(kernel_rows):
    paths = {row["path"] for row in kernel_rows}
    assert paths == {"parent", "kernels"}
    for row in kernel_rows:
        assert row["backend"] == "hintm"
        assert row["num_shards"] == 4
        assert row["throughput"] > 0


def test_kernels_ship_deltas_not_fallback(kernel_rows):
    """The measured batches must ride the kernels with the update log live."""
    kernels = next(row for row in kernel_rows if row["path"] == "kernels")
    assert kernels["delta_ops"] == NUM_UPDATES
    assert kernels["fanout_disabled"] is False


def test_batched_counting_speedup(kernel_rows):
    by_path = {row["path"]: row for row in kernel_rows}
    ratio = by_path["kernels"]["throughput"] / by_path["parent"]["throughput"]
    cores = _available_cores()
    if cores < 2:
        pytest.skip(
            f"kernel path reached {ratio:.2f}x over the parent path, but the "
            f"3x gate needs >=2 cores (this runner has {cores})"
        )
    threshold = 3.0 if cores >= 4 else 1.4
    assert ratio >= threshold, (
        f"worker-resident kernels only reached {ratio:.2f}x over the parent "
        f"path on {cores} cores (gate: {threshold}x); "
        f"kernels={by_path['kernels']['throughput']:.0f}/s "
        f"parent={by_path['parent']['throughput']:.0f}/s"
    )
