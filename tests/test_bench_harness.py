"""Unit tests for the benchmark harness and reporting helpers."""

import pytest

from repro.bench.harness import (
    INDEX_BUILDERS,
    build_index,
    measure_build_time,
    measure_index_size,
    measure_throughput,
)
from repro.bench.reporting import format_series, format_table
from repro.core.interval import Query


class TestHarness:
    def test_registry_contains_all_paper_indexes(self):
        for name in ("interval-tree", "period-index", "timeline", "1d-grid", "hint", "hint-m-opt"):
            assert name in INDEX_BUILDERS

    def test_build_index_unknown_name(self, synthetic_collection):
        with pytest.raises(KeyError):
            build_index("b-tree", synthetic_collection)

    def test_build_index_with_overrides(self, synthetic_collection):
        index = build_index("hint-m-opt", synthetic_collection, num_bits=7)
        assert index.num_bits == 7

    def test_measure_build_time(self, synthetic_collection):
        result = measure_build_time("1d-grid", synthetic_collection, num_partitions=64)
        assert result.build_seconds > 0
        assert result.size_bytes > 0
        assert result.index_name == "1d-grid"

    def test_measure_index_size(self, synthetic_collection):
        index = build_index("hint-m-opt", synthetic_collection, num_bits=8)
        assert measure_index_size(index) == index.memory_bytes()

    def test_measure_throughput(self, synthetic_collection, synthetic_queries):
        index = build_index("hint-m-opt", synthetic_collection, num_bits=8)
        throughput = measure_throughput(index, synthetic_queries[:30])
        assert throughput > 0

    def test_measure_throughput_empty_workload(self, synthetic_collection):
        index = build_index("naive-scan", synthetic_collection)
        assert measure_throughput(index, []) == 0.0

    def test_all_registered_indexes_answer_queries(self, synthetic_collection):
        lo, hi = synthetic_collection.span()
        q = Query(lo + (hi - lo) // 3, lo + (hi - lo) // 3 + (hi - lo) // 100)
        small_kwargs = {
            "1d-grid": {"num_partitions": 32},
            "timeline": {"num_checkpoints": 20},
            "period-index": {"num_coarse_partitions": 10, "num_levels": 3},
            "hint": {"num_bits": 14},
            "hint-m": {"num_bits": 8},
            "hint-m-subs": {"num_bits": 8},
            "hint-m-opt": {"num_bits": 8},
            "hint-m-hybrid": {"num_bits": 8},
        }
        reference = None
        for name in INDEX_BUILDERS:
            if name == "hint":
                continue  # needs a discrete domain; covered in its own tests
            index = build_index(name, synthetic_collection, **small_kwargs.get(name, {}))
            results = sorted(index.query(q))
            if reference is None:
                reference = results
            assert results == reference, name


class TestReporting:
    def test_format_table_contains_all_cells(self):
        table = format_table(
            "Table X", ["dataset", "throughput"], [["BOOKS", 1234.5], ["TAXIS", 99]]
        )
        assert "Table X" in table
        assert "BOOKS" in table and "TAXIS" in table
        assert "1,234" in table or "1234" in table

    def test_format_series_aligns_columns(self):
        text = format_series(
            "Figure Y",
            "m",
            [5, 10],
            {"hint-m": [100.0, 200.0], "1d-grid": [50.0, 60.0]},
        )
        assert "Figure Y" in text
        assert "hint-m" in text and "1d-grid" in text
        lines = text.splitlines()
        assert len(lines) >= 5

    def test_format_series_handles_missing_points(self):
        text = format_series("F", "x", [1, 2, 3], {"a": [1.0, 2.0]})
        assert "nan" in text.lower()
