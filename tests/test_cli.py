"""Unit tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main
from repro.core.interval import Query
from repro.datasets.io import load_intervals_csv, save_intervals_csv


@pytest.fixture()
def csv_path(tmp_path, tiny_collection):
    path = tmp_path / "intervals.csv"
    save_intervals_csv(tiny_collection, path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_requires_target(self, csv_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", str(csv_path)])

    def test_known_indexes_listed(self):
        parser = build_parser()
        args = parser.parse_args(["query", "x.csv", "--stab", "3", "--index", "interval-tree"])
        assert args.index == "interval-tree"


class TestQueryCommand:
    def test_range_query_prints_sorted_ids(self, csv_path, capsys, tiny_collection):
        assert main(["query", str(csv_path), "--start", "4", "--end", "9"]) == 0
        output = capsys.readouterr().out.splitlines()
        ids = [int(line) for line in output if not line.startswith("#")]
        expected = sorted(tiny_collection.query_ids(Query(4, 9)).tolist())
        assert ids == expected

    def test_stab_query(self, csv_path, capsys):
        assert main(["query", str(csv_path), "--stab", "3"]) == 0
        output = capsys.readouterr().out
        assert "#" in output

    def test_count_only(self, csv_path, capsys):
        assert main(["query", str(csv_path), "--start", "0", "--end", "15", "--count-only"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if not l.startswith("#")]
        assert lines == ["8"]

    def test_alternative_index(self, csv_path, capsys):
        assert main(
            ["query", str(csv_path), "--start", "4", "--end", "9", "--index", "1d-grid"]
        ) == 0
        baseline = [
            l for l in capsys.readouterr().out.splitlines() if not l.startswith("#")
        ]
        assert main(["query", str(csv_path), "--start", "4", "--end", "9"]) == 0
        hint = [l for l in capsys.readouterr().out.splitlines() if not l.startswith("#")]
        assert baseline == hint

    def test_missing_end_rejected(self, csv_path):
        with pytest.raises(SystemExit):
            main(["query", str(csv_path), "--start", "4"])

    def test_empty_csv_rejected(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(SystemExit):
            main(["query", str(empty), "--stab", "1"])


class TestListBackendsCommand:
    def test_lists_every_registered_backend(self, capsys):
        from repro.engine import available_backends

        assert main(["list-backends"]) == 0
        output = capsys.readouterr().out
        for name in available_backends():
            assert name in output
        assert "OptimizedHINTm" in output

    def test_index_choices_come_from_registry(self):
        # canonical names and legacy aliases both parse
        parser = build_parser()
        assert parser.parse_args(["query", "x.csv", "--stab", "1", "--index", "hintm_opt"])
        assert parser.parse_args(["query", "x.csv", "--stab", "1", "--index", "hint-m-opt"])
        with pytest.raises(SystemExit):
            parser.parse_args(["query", "x.csv", "--stab", "1", "--index", "b-tree"])


class TestBatchCommand:
    @pytest.fixture()
    def queries_path(self, tmp_path):
        path = tmp_path / "queries.csv"
        path.write_text("0,5\n4,9\n100,200\n")
        return path

    def test_batch_ids_match_per_query_results(
        self, csv_path, queries_path, capsys, tiny_collection
    ):
        assert main(["batch", str(csv_path), str(queries_path)]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if not l.startswith("#")]
        assert len(lines) == 3
        for line, (start, end) in zip(lines, [(0, 5), (4, 9), (100, 200)]):
            got = sorted(int(token) for token in line.split()) if line else []
            expected = sorted(tiny_collection.query_ids(Query(start, end)).tolist())
            assert got == expected

    def test_batch_count_only(self, csv_path, queries_path, capsys, tiny_collection):
        assert main(["batch", str(csv_path), str(queries_path), "--count-only"]) == 0
        out = capsys.readouterr().out
        counts = [int(l) for l in out.splitlines() if not l.startswith("#")]
        expected = [
            len(tiny_collection.query_ids(Query(start, end)))
            for start, end in [(0, 5), (4, 9), (100, 200)]
        ]
        assert counts == expected
        assert "# index=" in out

    def test_empty_queries_rejected(self, csv_path, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(SystemExit):
            main(["batch", str(csv_path), str(empty)])


class TestStatsCommand:
    def test_stats_output(self, csv_path, capsys):
        assert main(["stats", str(csv_path)]) == 0
        output = capsys.readouterr().out
        assert "cardinality:" in output
        assert "model m_opt:" in output
        assert "predicted k" in output


class TestGenerateCommand:
    def test_generate_books(self, tmp_path, capsys):
        output = tmp_path / "books.csv"
        assert main(["generate", "books", "--cardinality", "200", "--output", str(output)]) == 0
        generated = load_intervals_csv(output)
        assert len(generated) == 200

    def test_generate_synthetic(self, tmp_path):
        output = tmp_path / "syn.csv"
        assert (
            main(
                [
                    "generate",
                    "synthetic",
                    "--cardinality",
                    "150",
                    "--domain",
                    "10000",
                    "--output",
                    str(output),
                ]
            )
            == 0
        )
        generated = load_intervals_csv(output)
        assert len(generated) == 150
        assert generated.ends.max() < 10000

    def test_roundtrip_query_on_generated_data(self, tmp_path, capsys):
        output = tmp_path / "taxis.csv"
        main(["generate", "taxis", "--cardinality", "300", "--output", str(output)])
        capsys.readouterr()
        assert (
            main(["query", str(output), "--start", "0", "--end", str(10**9), "--count-only"])
            == 0
        )
        lines = [l for l in capsys.readouterr().out.splitlines() if not l.startswith("#")]
        assert int(lines[0]) >= 0
