"""Acceptance benchmark for the cluster tier.

The PR's bar, on a TAXIS-scale collection split over real HTTP shard
servers behind a :class:`~repro.cluster.router.ClusterRouter`:

* hot repeated-query throughput through the router with the
  generation-stamped distributed result cache is >= 3x the uncached
  fan-out path on a skewed (Zipf-weighted) workload -- a cache hit is a
  front-tier dictionary lookup, a miss is one ``/shard-batch`` HTTP
  round-trip per overlapping shard plus the domain-order merge;
* killing one replica of the hottest shard mid-workload fails queries
  over to the surviving replica and never changes an answer (asserted
  against a single whole-collection store).

``scripts/run_experiments.py --only cluster_routing`` writes the same
driver's table to ``benchmark_results/cluster_routing.txt``.
"""

import pytest

from repro.bench.experiments import cluster_routing

CARDINALITY = 60_000
NUM_QUERIES = 240
EXTENT = 0.05
#: the unoptimized HINT^m: per-probe cost is dominated by the traversal, so
#: the cache's win is the fan-out + index work it removes (see the serving
#: benchmark for the same reasoning one tier down)
BACKEND = "hintm"


@pytest.fixture(scope="module")
def result():
    return cluster_routing(
        cardinality=CARDINALITY,
        num_queries=NUM_QUERIES,
        extent_fraction=EXTENT,
        backend=BACKEND,
    )


def test_cached_routing_beats_uncached_3x(result):
    rows = {r["mode"]: r for r in result["routing"]}
    cached, uncached = rows["cached"], rows["uncached"]
    assert cached["hit_rate"] > 0.5, (
        f"the skewed workload should mostly hit the front-tier cache, got "
        f"{cached['hit_rate']:.2f}"
    )
    ratio = cached["qps"] / uncached["qps"] if uncached["qps"] else 0.0
    assert ratio >= 3.0, (
        f"cached routing reached only {ratio:.2f}x over the uncached fan-out "
        f"({cached['qps']:,.0f} vs {uncached['qps']:,.0f} req/s on the "
        f"{BACKEND} backend)"
    )


def test_replica_kill_mid_workload_fails_over_correctly(result):
    stages = {r["stage"]: r for r in result["failover"]}
    assert set(stages) == {"all replicas", "one replica killed"}
    for row in stages.values():
        assert row["qps"] > 0
        assert row["correct"], "routed answers diverged after the replica kill"
    assert stages["one replica killed"]["failovers"] >= 1, (
        "the kill never forced a failover -- the victim was not probed"
    )
