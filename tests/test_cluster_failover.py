"""Follower takeover oracle: kill the shipping leader, promote, exact state.

Drives the failover soak (``scripts/cluster_failover_soak.py``) one round at
a time: a child process serves a durable shard over HTTP while streaming a
deterministic op mix; the parent attaches an in-process
:class:`~repro.cluster.follower.ClusterFollower` whose applied generation
gates every semi-synchronous ack; then the leader is SIGKILLed -- at a
named durability crash point or on a timer -- the follower is promoted over
HTTP, and both the promoted follower's served live set AND an independent
reopen of the leader's WAL directory must equal the acked prefix plus at
most the single in-flight op.

Covered here: every named crash point (one mid-shipping round each), a raw
timer-kill round per backend pairing, and consecutive rounds proving the
durable state feeds the next leader after each takeover.
"""

import importlib.util
import time
from pathlib import Path

import pytest

from repro.cluster import ClusterFollower
from repro.cluster.shard_server import start_shard_server_thread
from repro.durability.faults import CRASH_POINTS
from repro.engine import IntervalStore
from repro.serve.client import ServeClient

_SOAK_PATH = Path(__file__).resolve().parents[1] / "scripts" / "cluster_failover_soak.py"
_spec = importlib.util.spec_from_file_location("cluster_failover_soak", _SOAK_PATH)
soak = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(soak)

OPS = 36


def _args(backend="hintm_hybrid", ops=OPS):
    import argparse

    return argparse.Namespace(
        backend=backend,
        shards=1,
        fsync="always",
        seed=4242,
        ops=ops,
        maintain_every=ops // 3,
        id_base=soak.STREAM_ID_BASE,
    )


def _fresh_oracle():
    collection = soak.base_collection()
    return {
        int(i): (int(s), int(e))
        for i, s, e in zip(collection.ids, collection.starts, collection.ends)
    }


def _run_round(tmp_path, args, round_no, oracle=None, budget=240):
    oracle = _fresh_oracle() if oracle is None else oracle
    # run_round raises SystemExit with a diagnostic on any divergence --
    # follower-side or leader-side
    assert soak.run_round(args, tmp_path, round_no, oracle, time.monotonic() + budget)
    return oracle


@pytest.mark.parametrize("point", CRASH_POINTS)
def test_takeover_at_named_crash_point(tmp_path, point):
    # even round numbers select crash points in order: 2*i -> CRASH_POINTS[i]
    round_no = 2 * CRASH_POINTS.index(point)
    _run_round(tmp_path, _args(), round_no)


@pytest.mark.parametrize("backend", ["hintm", "hintm_hybrid", "timeline"])
def test_takeover_after_raw_kill(tmp_path, backend):
    # odd round numbers are raw mid-stream SIGKILLs (no crash point armed);
    # the follower replays through the store API, so leader and standby
    # backends need not match -- the parent side always uses args.backend
    _run_round(tmp_path, _args(backend=backend), round_no=1)


def test_noop_delete_never_overreports_catchup(tmp_path):
    """A no-op delete must not let the follower's generation outrun its state.

    The router broadcasts deletes to every shard, so a shard's leader
    routinely WALs a delete for an id it never held: the record carries the
    predicted generation current+1, the apply fails, the leader's generation
    stays put and the NEXT record reuses the same value.  If the follower
    floors to a skipped record's generation, its reported catch-up runs one
    op ahead of its contents -- and a promotion gated on generation equality
    in that window silently loses the in-flight op.
    """
    store = IntervalStore.open(
        soak.base_collection(),
        "hintm_hybrid",
        wal_dir=str(tmp_path / "wal"),
        fsync="always",
    )
    handle = start_shard_server_thread(store, host="127.0.0.1", port=0, shard_id=0)
    follower = None
    try:
        follower = ClusterFollower(
            "127.0.0.1", handle.port, backend="hintm_hybrid", poll_timeout=1.0
        ).start()
        with ServeClient("127.0.0.1", handle.port) as client:
            client.insert(soak.STREAM_ID_BASE, 5, 9)
            client.delete(77_777_777)  # never existed on this shard
            deadline = time.monotonic() + 30.0
            while follower.records_applied < 2:
                assert time.monotonic() < deadline, "feed never shipped the ops"
                time.sleep(0.01)
            # the no-op delete moved the generation on neither side
            assert follower.applied_generation() <= int(store.result_generation())
            # the generation the no-op predicted belongs to the NEXT real op;
            # catch-up must wait for it, not assume it already shipped
            client.insert(soak.STREAM_ID_BASE + 1, 6, 8)
            target = int(store.result_generation())
            deadline = time.monotonic() + 30.0
            while follower.applied_generation() < target:
                assert time.monotonic() < deadline, "follower never caught up"
                time.sleep(0.01)
        assert soak.live_set(follower.store) == soak.live_set(store)
    finally:
        if follower is not None:
            follower.stop()
        handle.stop()
        store.close()


def test_consecutive_takeovers_accumulate_durable_state(tmp_path):
    """Each recovered state seeds the next leader; nothing leaks or drifts."""
    args = _args()
    oracle = _fresh_oracle()
    deadline = time.monotonic() + 240
    for round_no in (1, 3, 5):
        assert soak.run_round(args, tmp_path, round_no, oracle, deadline)
    # three net-positive rounds must have grown the durable live set
    assert len(oracle) > soak.BASE_ROWS
