"""Front-tier routing oracle: fan-out/merge == one-store truth.

Every routed answer -- ids, counts (home-start deduped), existence, and
batches -- must be byte-equal to the same query against a single
:class:`IntervalStore` over the whole collection, across backends, shard
counts, replica kills mid-workload, and cache hits.  Also covers the
distributed result cache's generation invalidation through router-side
updates and the :class:`NoHealthyReplicaError` terminal path.
"""

import random

import pytest

from repro.cluster import (
    ClusterRouter,
    ClusterTopology,
    NoHealthyReplicaError,
    start_shard_server_thread,
)
from repro.core.interval import Interval, IntervalCollection
from repro.engine import IntervalStore
from repro.engine.sharding import ShardPlan, shard_mask
from repro.serve.cache import ResultCache


def _collection(n=300, seed=17):
    rng = random.Random(seed)
    intervals = []
    for i in range(n):
        start = rng.randrange(0, 10_000)
        # heavy-tailed spans so plenty of rows straddle shard cuts --
        # the hard case for count dedup
        end = start + (rng.randrange(1, 50) if i % 3 else rng.randrange(500, 4_000))
        intervals.append(Interval(i, start, end))
    return IntervalCollection.from_intervals(intervals)


def _queries(collection, n=40, seed=23):
    rng = random.Random(seed)
    lo, hi = (int(v) for v in collection.span())
    pairs = []
    for _ in range(n):
        start = rng.randrange(lo - 100, hi + 100)
        end = start + rng.randrange(0, (hi - lo) // 2)
        pairs.append((start, end))
    return pairs


class _Cluster:
    """K shards x R replicas of in-process shard servers + a topology."""

    def __init__(self, collection, backend, num_shards, replicas=1, **router_kwargs):
        self.plan = ShardPlan.for_collection(collection, num_shards)
        self.handles = []
        addresses = []
        for shard in range(self.plan.num_shards):
            rows = collection.take(shard_mask(collection, self.plan.cuts, shard))
            row = []
            for _ in range(replicas):
                store = IntervalStore.open(rows, backend)
                row.append(
                    start_shard_server_thread(
                        store, host="127.0.0.1", port=0, shard_id=shard
                    )
                )
            self.handles.append(row)
            addresses.append([("127.0.0.1", handle.port) for handle in row])
        self.topology = ClusterTopology.build(self.plan.cuts, addresses)
        self.router = ClusterRouter(self.topology, **router_kwargs)

    def kill(self, shard, replica):
        self.handles[shard][replica].stop()

    def close(self):
        self.router.close()
        for row in self.handles:
            for handle in row:
                handle.stop()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def _oracle(collection, backend="hintm"):
    return IntervalStore.open(collection, backend)


@pytest.mark.parametrize("num_shards", [1, 4])
@pytest.mark.parametrize("backend", ["hintm", "hintm_hybrid", "timeline"])
def test_routed_queries_match_single_store(backend, num_shards):
    collection = _collection()
    truth = _oracle(collection, backend)
    with _Cluster(collection, backend, num_shards) as cluster:
        assert cluster.plan.num_shards == num_shards
        for start, end in _queries(collection):
            want = list(truth.query().overlapping(start, end).ids())
            got = cluster.router.query(start, end)
            assert sorted(got["ids"]) == sorted(want)
            assert got["count"] == len(want)
            counted = cluster.router.query(start, end, count_only=True)
            assert counted["count"] == len(want), (start, end)
            assert cluster.router.exists(start, end) == bool(want)


def test_batch_fanout_matches_and_caches():
    collection = _collection()
    truth = _oracle(collection)
    pairs = _queries(collection, n=25)
    with _Cluster(collection, "hintm", 4, cache=ResultCache(capacity=256)) as cluster:
        first = cluster.router.batch(pairs)
        for (start, end), answer in zip(pairs, first):
            want = set(truth.query().overlapping(start, end).ids())
            assert set(answer["ids"]) == want
        # an identical workload is answered from the front-tier cache
        probes_before = cluster.router.stats()["probes"]
        second = cluster.router.batch(pairs)
        assert second == first
        assert cluster.router.stats()["probes"] == probes_before
        assert cluster.router.stats()["cache"]["hits"] >= len(pairs)


def test_router_updates_invalidate_the_distributed_cache():
    collection = _collection(n=50)
    with _Cluster(collection, "hintm_hybrid", 2,
                  cache=ResultCache(capacity=64)) as cluster:
        lo, hi = (int(v) for v in collection.span())
        before = cluster.router.query(lo, hi)
        assert cluster.router.query(lo, hi) == before  # cached
        inserted = cluster.router.insert(10_000, lo + 1, lo + 5)
        assert inserted["replicas"] >= 1
        after = cluster.router.query(lo, hi)
        assert 10_000 in after["ids"]  # the generation bump invalidated it
        cluster.router.delete(10_000)
        assert 10_000 not in cluster.router.query(lo, hi)["ids"]


def test_failover_to_surviving_replica_mid_workload():
    collection = _collection()
    truth = _oracle(collection)
    with _Cluster(collection, "hintm", 2, replicas=2,
                  cache=0, retries=1) as cluster:
        pairs = _queries(collection, n=10)
        for start, end in pairs[:5]:
            assert set(cluster.router.query(start, end)["ids"]) == set(
                truth.query().overlapping(start, end).ids()
            )
        cluster.kill(0, 0)  # one replica of shard 0 goes away
        for start, end in pairs:
            assert set(cluster.router.query(start, end)["ids"]) == set(
                truth.query().overlapping(start, end).ids()
            )
        failures = cluster.router.failures()
        assert failures and all(f.shard_id == 0 for f in failures)


def test_no_healthy_replica_is_terminal():
    collection = _collection(n=40)
    with _Cluster(collection, "hintm", 2, cache=0,
                  retries=1, cooldown=0.05) as cluster:
        lo, hi = (int(v) for v in collection.span())
        cluster.kill(1, 0)  # the only replica of shard 1
        with pytest.raises(NoHealthyReplicaError) as excinfo:
            cluster.router.query(lo, hi)
        assert excinfo.value.failures
        # shard 0 alone keeps serving queries that never touch shard 1
        first_cut = cluster.plan.cuts[0]
        assert cluster.router.query(lo, first_cut - 1)["count"] >= 0
