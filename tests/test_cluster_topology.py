"""The static cluster topology: JSON round-trip, validation, planning."""

import json

import pytest

from repro.cluster.topology import (
    TOPOLOGY_VERSION,
    ClusterTopology,
    Endpoint,
    TopologyError,
)


def _topology():
    return ClusterTopology.build(
        (1_000, 2_000),
        [
            [("127.0.0.1", 9000), ("127.0.0.1", 9001)],
            [("127.0.0.1", 9010)],
            [("10.0.0.5", 9020)],
        ],
    )


class TestConstruction:
    def test_plan_matches_cuts(self):
        topology = _topology()
        assert topology.num_shards == 3
        plan = topology.plan()
        assert plan.cuts == (1_000, 2_000)
        assert plan.shard_range(500, 1_500) == (0, 1)

    def test_replicas_for(self):
        topology = _topology()
        assert len(topology.replicas_for(0)) == 2
        assert topology.replicas_for(2)[0] == Endpoint("10.0.0.5", 9020)
        with pytest.raises(TopologyError, match="out of range"):
            topology.replicas_for(3)

    def test_endpoints_are_flat_plan_order(self):
        rows = _topology().endpoints()
        assert [(shard, replica) for shard, replica, _ in rows] == [
            (0, 0), (0, 1), (1, 0), (2, 0),
        ]

    def test_every_shard_needs_a_replica(self):
        with pytest.raises(TopologyError, match="no replicas"):
            ClusterTopology.build((100,), [[("h", 1)], []])

    def test_replica_rows_must_cover_every_shard(self):
        with pytest.raises(TopologyError, match="shard"):
            ClusterTopology.build((100,), [[("h", 1)]])

    def test_cuts_must_be_increasing(self):
        with pytest.raises(Exception):
            ClusterTopology.build((200, 100), [[("h", 1)]] * 3)


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        topology = _topology()
        path = tmp_path / "topology.json"
        topology.save(path)
        assert ClusterTopology.load(path) == topology

    def test_file_format_is_the_documented_shape(self, tmp_path):
        path = tmp_path / "topology.json"
        _topology().save(path)
        raw = json.loads(path.read_text())
        assert raw["version"] == TOPOLOGY_VERSION
        assert raw["cuts"] == [1_000, 2_000]
        assert raw["shards"][0]["replicas"][0] == {"host": "127.0.0.1", "port": 9000}

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "topology.json"
        raw = _topology().as_dict()
        raw["version"] = 99
        path.write_text(json.dumps(raw))
        with pytest.raises(TopologyError, match="version"):
            ClusterTopology.load(path)

    def test_duplicate_shard_rows_rejected(self, tmp_path):
        path = tmp_path / "topology.json"
        raw = _topology().as_dict()
        raw["shards"][1]["shard"] = 0
        path.write_text(json.dumps(raw))
        with pytest.raises(TopologyError):
            ClusterTopology.load(path)

    def test_unreadable_file_is_a_topology_error(self, tmp_path):
        with pytest.raises(TopologyError, match="cannot read"):
            ClusterTopology.load(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(TopologyError, match="cannot read"):
            ClusterTopology.load(bad)
