"""Unit tests for the comparison-free HINT (paper Section 3.1)."""

import numpy as np
import pytest

from repro.baselines.naive import NaiveIndex
from repro.core.errors import DomainError
from repro.core.interval import Interval, IntervalCollection, Query
from repro.hint.comparison_free import ComparisonFreeHINT


@pytest.fixture(scope="module")
def discrete_collection() -> IntervalCollection:
    rng = np.random.default_rng(13)
    starts = rng.integers(0, 1024 - 64, 2_000)
    lengths = rng.integers(0, 64, 2_000)
    return IntervalCollection(ids=np.arange(2_000), starts=starts, ends=starts + lengths)


class TestConstruction:
    def test_invalid_bits(self, tiny_collection):
        with pytest.raises(DomainError):
            ComparisonFreeHINT(tiny_collection, num_bits=0)

    def test_out_of_domain_interval_rejected(self):
        data = IntervalCollection.from_intervals([Interval(0, 0, 40)])
        with pytest.raises(DomainError):
            ComparisonFreeHINT(data, num_bits=4)

    def test_num_levels(self, tiny_collection):
        index = ComparisonFreeHINT(tiny_collection, num_bits=4)
        assert index.num_bits == 4
        assert index.num_levels == 5

    def test_replication_factor_at_least_one(self, discrete_collection):
        index = ComparisonFreeHINT(discrete_collection, num_bits=10)
        assert index.replication_factor >= 1.0
        assert len(index) == len(discrete_collection)

    def test_paper_example_assignment(self):
        data = IntervalCollection.from_intervals([Interval(0, 5, 9)])
        index = ComparisonFreeHINT(data, num_bits=4)
        # [5, 9]: original in P(4,5); replicas in P(3,3), P(3,4)
        assert index._originals[4][5] == [0]
        assert index._replicas_parts[3][3] == [0]
        assert index._replicas_parts[3][4] == [0]
        assert index.replication_factor == pytest.approx(3.0)


class TestQueries:
    @pytest.mark.parametrize("sparse", [True, False])
    def test_matches_naive(self, discrete_collection, sparse):
        index = ComparisonFreeHINT(discrete_collection, num_bits=10, sparse=sparse)
        naive = NaiveIndex.build(discrete_collection)
        rng = np.random.default_rng(7)
        for _ in range(60):
            start = int(rng.integers(0, 1023))
            end = min(1023, start + int(rng.integers(0, 100)))
            q = Query(start, end)
            assert sorted(index.query(q)) == sorted(naive.query(q))

    @pytest.mark.parametrize("sparse", [True, False])
    def test_stabbing_queries(self, discrete_collection, sparse):
        index = ComparisonFreeHINT(discrete_collection, num_bits=10, sparse=sparse)
        naive = NaiveIndex.build(discrete_collection)
        for point in range(0, 1024, 37):
            assert sorted(index.stab(point)) == sorted(naive.stab(point))

    def test_no_duplicates(self, discrete_collection):
        index = ComparisonFreeHINT(discrete_collection, num_bits=10)
        results = index.query(Query(0, 1023))
        assert len(results) == len(set(results)) == len(discrete_collection)

    def test_zero_comparisons_reported(self, discrete_collection):
        """The comparison-free HINT never compares endpoints (Section 3.1)."""
        index = ComparisonFreeHINT(discrete_collection, num_bits=10)
        _, stats = index.query_with_stats(Query(100, 400))
        assert stats.comparisons == 0

    def test_query_clamped_to_domain(self, discrete_collection):
        index = ComparisonFreeHINT(discrete_collection, num_bits=10)
        naive = NaiveIndex.build(discrete_collection)
        assert sorted(index.query(Query(-50, 5000))) == sorted(naive.query(Query(-50, 5000)))

    def test_sparse_and_dense_agree(self, discrete_collection):
        sparse = ComparisonFreeHINT(discrete_collection, num_bits=10, sparse=True)
        dense = ComparisonFreeHINT(discrete_collection, num_bits=10, sparse=False)
        for q in [Query(0, 10), Query(500, 700), Query(1000, 1023), Query(3, 3)]:
            assert sorted(sparse.query(q)) == sorted(dense.query(q))


class TestSparsityOptimization:
    def test_sparse_accesses_fewer_partitions_on_sparse_data(self):
        """Table 6: the optimization skips empty partitions."""
        # data clustered in a tiny region of a large discrete domain
        rng = np.random.default_rng(3)
        starts = rng.integers(0, 100, 500)
        data = IntervalCollection(
            ids=np.arange(500), starts=starts, ends=starts + rng.integers(0, 5, 500)
        )
        sparse = ComparisonFreeHINT(data, num_bits=14, sparse=True)
        dense = ComparisonFreeHINT(data, num_bits=14, sparse=False)
        q = Query(0, 2**14 - 1)
        _, sparse_stats = sparse.query_with_stats(q)
        _, dense_stats = dense.query_with_stats(q)
        assert sparse_stats.partitions_accessed < dense_stats.partitions_accessed
        assert sorted(sparse.query(q)) == sorted(dense.query(q))

    def test_memory_reports_smaller_for_sparse(self):
        rng = np.random.default_rng(3)
        starts = rng.integers(0, 100, 500)
        data = IntervalCollection(
            ids=np.arange(500), starts=starts, ends=starts + rng.integers(0, 5, 500)
        )
        sparse = ComparisonFreeHINT(data, num_bits=14, sparse=True)
        dense = ComparisonFreeHINT(data, num_bits=14, sparse=False)
        assert sparse.memory_bytes() < dense.memory_bytes()

    def test_nonempty_partitions_counted(self, discrete_collection):
        index = ComparisonFreeHINT(discrete_collection, num_bits=10)
        assert 0 < index.nonempty_partitions() <= 2 ** 11


class TestUpdates:
    def test_insert_then_query(self, discrete_collection):
        index = ComparisonFreeHINT(discrete_collection, num_bits=10)
        index.insert(Interval(10_000, 512, 520))
        assert 10_000 in index.query(Query(515, 515))

    def test_delete_tombstone(self, discrete_collection):
        index = ComparisonFreeHINT(discrete_collection, num_bits=10)
        victim = int(discrete_collection.ids[0])
        assert index.delete(victim) is True
        assert victim not in index.query(Query(0, 1023))
        assert index.delete(victim) is False
        assert len(index) == len(discrete_collection) - 1

    def test_delete_unknown(self, discrete_collection):
        index = ComparisonFreeHINT(discrete_collection, num_bits=10)
        assert index.delete(987_654) is False
