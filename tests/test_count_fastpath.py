"""Tests for the counting fast paths (``IntervalIndex.query_count``).

Covers correctness of every override against the materialising path and the
acceptance requirement that ``OptimizedHINTm.query_count`` beats
``len(query(...))`` by at least 2x on a 100k-interval dataset (it avoids
building any intermediate id list).
"""

import time

import numpy as np
import pytest

from repro.baselines.grid1d import Grid1D
from repro.baselines.interval_tree import IntervalTree
from repro.baselines.naive import NaiveIndex
from repro.core.interval import IntervalCollection, Query
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic
from repro.engine import IntervalStore
from repro.hint.optimized import OptimizedHINTm


@pytest.fixture(scope="module")
def fastpath_collection():
    rng = np.random.default_rng(11)
    starts = rng.integers(0, 50_000, size=2_000)
    lengths = rng.integers(0, 2_000, size=2_000)
    return IntervalCollection(ids=np.arange(2_000), starts=starts, ends=starts + lengths)


@pytest.fixture(scope="module")
def fastpath_queries():
    rng = np.random.default_rng(12)
    queries = []
    for _ in range(150):
        start = int(rng.integers(0, 52_000))
        queries.append(Query(start, start + int(rng.integers(0, 5_000))))
    queries.append(Query(0, 60_000))
    queries.append(Query.stabbing(25_000))
    queries.append(Query(90_000, 95_000))  # beyond the data span
    return queries


class TestCountCorrectness:
    @pytest.mark.parametrize("sparse", [True, False])
    @pytest.mark.parametrize("columnar", [True, False])
    def test_optimized_hintm_all_variants(
        self, fastpath_collection, fastpath_queries, sparse, columnar
    ):
        index = OptimizedHINTm(
            fastpath_collection, num_bits=9, sparse_directory=sparse, columnar=columnar
        )
        for query in fastpath_queries:
            expected = len(index.query(query))
            assert index.query_count(query) == expected, (sparse, columnar, query)
            assert index.query_exists(query) == bool(expected), (sparse, columnar, query)

    def test_optimized_hintm_with_tombstones(self, fastpath_collection, fastpath_queries):
        index = OptimizedHINTm(fastpath_collection, num_bits=9)
        for interval_id in fastpath_collection.ids[:100]:
            index.delete(int(interval_id))
        for query in fastpath_queries[:40]:
            assert index.query_count(query) == len(index.query(query))

    def test_grid1d(self, fastpath_collection, fastpath_queries):
        index = Grid1D(fastpath_collection, num_partitions=64)
        for query in fastpath_queries:
            expected = len(index.query(query))
            assert index.query_count(query) == expected
            assert index.query_exists(query) == bool(expected)
        index.delete(0)
        index.delete(1)
        for query in fastpath_queries[:40]:
            assert index.query_count(query) == len(index.query(query))

    def test_naive(self, fastpath_collection, fastpath_queries):
        index = NaiveIndex(fastpath_collection)
        for query in fastpath_queries:
            assert index.query_count(query) == len(index.query(query))
            assert index.query_exists(query) == bool(index.query(query))

    def test_base_default_on_backend_without_override(
        self, fastpath_collection, fastpath_queries
    ):
        index = IntervalTree.build(fastpath_collection)
        for query in fastpath_queries[:20]:
            assert index.query_count(query) == len(index.query(query))


class TestCountPerformance:
    def test_count_at_least_2x_faster_than_materialising_on_100k(self):
        """Acceptance: ``count()`` >= 2x faster than ``len(ids())`` at 100k scale.

        A broad query makes the result set large, so the materialising path
        must build a ~100k-element python list while the count path sums
        partition-run lengths; the observed gap is >50x, asserted at 2x to
        stay robust on noisy CI machines.
        """
        collection = generate_synthetic(
            SyntheticConfig(
                domain_length=10_000_000,
                cardinality=100_000,
                alpha=1.2,
                sigma=1_000_000,
                seed=7,
            )
        )
        store = IntervalStore.open(collection, backend="hintm_opt", num_bits=10)
        lo, hi = collection.span()

        def best_of(action, repeats=5):
            best = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                action()
                best = min(best, time.perf_counter() - t0)
            return best

        builder = lambda: store.query().overlapping(lo, hi)
        count = builder().count()
        assert count == len(builder().ids()) == 100_000

        ids_seconds = best_of(lambda: builder().ids())
        count_seconds = best_of(lambda: builder().count())
        assert count_seconds * 2 <= ids_seconds, (
            f"count() took {count_seconds:.6f}s vs ids() {ids_seconds:.6f}s "
            f"(speedup {ids_seconds / max(count_seconds, 1e-12):.1f}x, need >= 2x)"
        )
