"""Crash-recovery oracle: SIGKILL mid-ingest, reopen, exact acked state.

Drives the soak harness (``scripts/crash_recovery_soak.py``) one round at a
time: a child process applies an interleaved insert/delete stream against a
durable store under ``fsync="always"``, acking each applied op to a fsynced
side file; the parent kills it -- at a named durability crash point, or
with a raw SIGKILL once the ack file shows mid-stream progress -- then
reopens the WAL directory and requires the recovered live set to be
*exactly* the acked prefix plus at most the single in-flight operation.
The round itself also checks reopen idempotency (recovery twice = once).

Covered here: every named crash point (one round each), and a raw-kill
round for every update-capable backend at K=1 and K=4.
"""

import importlib.util
from pathlib import Path

import pytest

from repro.durability.faults import CRASH_POINTS

_SOAK_PATH = Path(__file__).resolve().parents[1] / "scripts" / "crash_recovery_soak.py"
_spec = importlib.util.spec_from_file_location("crash_recovery_soak", _SOAK_PATH)
soak = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(soak)

#: every registered backend whose insert AND delete work (hintm_opt's
#: subdivision layout has no insert path; composites shard these)
UPDATE_BACKENDS = [
    "grid1d",
    "hint_cf",
    "hintm",
    "hintm_hybrid",
    "hintm_sub",
    "interval_tree",
    "naive",
    "period",
    "timeline",
]

OPS = 48


def _args(backend="hintm_hybrid", shards=1, ops=OPS):
    import argparse

    return argparse.Namespace(
        backend=backend,
        shards=shards,
        fsync="always",
        seed=1234,
        ops=ops,
        maintain_every=ops // 3,
        id_base=soak.STREAM_ID_BASE,
    )


def _fresh_oracle():
    collection = soak.base_collection()
    return {
        int(i): (int(s), int(e))
        for i, s, e in zip(collection.ids, collection.starts, collection.ends)
    }


def _run_round(tmp_path, args, round_no):
    import time

    oracle = _fresh_oracle()
    # run_round raises SystemExit with a diagnostic on any oracle divergence
    assert soak.run_round(args, tmp_path, round_no, oracle, time.monotonic() + 120)
    return oracle


@pytest.mark.parametrize("point", CRASH_POINTS)
def test_crash_at_named_point_recovers_exactly(tmp_path, point):
    # even round numbers select crash points in order: 2*i -> CRASH_POINTS[i]
    round_no = 2 * CRASH_POINTS.index(point)
    _run_round(tmp_path, _args(), round_no)


@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("backend", UPDATE_BACKENDS)
def test_raw_kill_recovers_exactly_on_every_backend(tmp_path, backend, shards):
    # odd round numbers are raw mid-stream SIGKILLs (no crash point armed)
    _run_round(tmp_path, _args(backend=backend, shards=shards), round_no=1)


def test_consecutive_rounds_accumulate_durable_state(tmp_path):
    """Recovery feeds the next round: state survives repeated kills."""
    import time

    args = _args()
    oracle = _fresh_oracle()
    deadline = time.monotonic() + 240
    for round_no in (1, 3, 5):
        assert soak.run_round(args, tmp_path, round_no, oracle, deadline)
    # three net-positive rounds must have grown the durable live set
    assert len(oracle) > soak.BASE_ROWS
