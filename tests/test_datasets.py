"""Unit tests for the dataset generators (repro.datasets)."""

import numpy as np
import pytest

from repro.datasets.real_like import (
    REAL_DATASET_PROFILES,
    generate_books_like,
    generate_greend_like,
    generate_real_like,
    generate_taxis_like,
    generate_webkit_like,
)
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic


class TestSyntheticGenerator:
    def test_cardinality_and_bounds(self):
        config = SyntheticConfig(domain_length=10_000, cardinality=1_000, seed=3)
        data = generate_synthetic(config)
        assert len(data) == 1_000
        assert data.starts.min() >= 0
        assert data.ends.max() < 10_000
        assert np.all(data.ends >= data.starts)

    def test_deterministic_for_seed(self):
        config = SyntheticConfig(domain_length=5_000, cardinality=500, seed=11)
        a = generate_synthetic(config)
        b = generate_synthetic(config)
        assert np.array_equal(a.starts, b.starts)
        assert np.array_equal(a.ends, b.ends)

    def test_different_seeds_differ(self):
        a = generate_synthetic(SyntheticConfig(cardinality=500, seed=1))
        b = generate_synthetic(SyntheticConfig(cardinality=500, seed=2))
        assert not np.array_equal(a.starts, b.starts)

    def test_alpha_controls_interval_length(self):
        """Table 5 / Figure 14: larger alpha means shorter intervals."""
        long_cfg = SyntheticConfig(domain_length=100_000, cardinality=3_000, alpha=1.01, seed=5)
        short_cfg = SyntheticConfig(domain_length=100_000, cardinality=3_000, alpha=1.8, seed=5)
        assert generate_synthetic(long_cfg).mean_duration() > generate_synthetic(
            short_cfg
        ).mean_duration()

    def test_sigma_controls_spread(self):
        """Larger sigma spreads the interval positions over the domain."""
        narrow = generate_synthetic(
            SyntheticConfig(domain_length=1_000_000, cardinality=3_000, sigma=1_000, seed=5)
        )
        wide = generate_synthetic(
            SyntheticConfig(domain_length=1_000_000, cardinality=3_000, sigma=200_000, seed=5)
        )
        assert np.std(wide.starts) > np.std(narrow.starts)

    def test_zero_cardinality(self):
        assert len(generate_synthetic(SyntheticConfig(cardinality=0))) == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_synthetic(SyntheticConfig(alpha=0.9))
        with pytest.raises(ValueError):
            generate_synthetic(SyntheticConfig(domain_length=1))

    def test_scaled_from_paper(self):
        scaled = SyntheticConfig().scaled_from_paper()
        assert scaled.domain_length == 128_000_000
        assert scaled.cardinality == 100_000_000


class TestRealLikeGenerators:
    def test_profiles_present(self):
        assert set(REAL_DATASET_PROFILES) == {"BOOKS", "WEBKIT", "TAXIS", "GREEND"}

    @pytest.mark.parametrize("name", ["BOOKS", "WEBKIT", "TAXIS", "GREEND"])
    def test_generated_data_within_domain(self, name):
        profile = REAL_DATASET_PROFILES[name]
        data = generate_real_like(profile, cardinality=2_000, seed=1)
        assert len(data) == 2_000
        assert data.starts.min() >= 0
        assert data.ends.max() < profile.domain_length
        assert np.all(data.ends >= data.starts)

    @pytest.mark.parametrize("name", ["BOOKS", "WEBKIT", "TAXIS", "GREEND"])
    def test_mean_duration_matches_profile_order_of_magnitude(self, name):
        profile = REAL_DATASET_PROFILES[name]
        data = generate_real_like(profile, cardinality=5_000, seed=2)
        target = max(1.0, profile.mean_duration_fraction * profile.domain_length)
        measured = max(1.0, data.mean_duration())
        ratio = measured / target
        assert 0.2 <= ratio <= 5.0

    def test_books_intervals_long_taxis_intervals_short(self):
        """Table 4's key contrast: BOOKS has long intervals, TAXIS tiny ones."""
        books = generate_books_like(cardinality=2_000, seed=3)
        taxis = generate_taxis_like(cardinality=2_000, seed=3)
        books_fraction = books.mean_duration() / books.domain_length()
        taxis_fraction = taxis.mean_duration() / taxis.domain_length()
        assert books_fraction > 100 * taxis_fraction

    def test_convenience_wrappers(self):
        assert len(generate_webkit_like(cardinality=100)) == 100
        assert len(generate_greend_like(cardinality=100)) == 100

    def test_deterministic_for_seed(self):
        a = generate_books_like(cardinality=500, seed=9)
        b = generate_books_like(cardinality=500, seed=9)
        assert np.array_equal(a.starts, b.starts)

    def test_zero_cardinality(self):
        assert len(generate_books_like(cardinality=0)) == 0
