"""Unit tests for the discrete domain mapping (repro.core.domain)."""

import numpy as np
import pytest

from repro.core.domain import Domain, bit_length_for, partition_extent, prefix
from repro.core.errors import DomainError


class TestPrefixHelpers:
    def test_prefix_matches_paper_example(self):
        # the paper maps [21, 38] (6-bit) to [5, 9] (4-bit) by taking prefixes
        assert prefix(4, 21, 6) == 5
        assert prefix(4, 38, 6) == 9

    def test_prefix_full_length_is_identity(self):
        assert prefix(6, 38, 6) == 38

    def test_prefix_zero_is_root(self):
        assert prefix(0, 63, 6) == 0

    def test_bit_length_for(self):
        assert bit_length_for(1) == 1
        assert bit_length_for(2) == 1
        assert bit_length_for(3) == 2
        assert bit_length_for(16) == 4
        assert bit_length_for(17) == 5

    def test_bit_length_for_invalid(self):
        with pytest.raises(DomainError):
            bit_length_for(0)

    def test_partition_extent(self):
        assert partition_extent(4, 4) == 1
        assert partition_extent(4, 0) == 16
        with pytest.raises(DomainError):
            partition_extent(4, 5)


class TestDomain:
    def test_identity_domain(self):
        domain = Domain.identity(4)
        assert domain.size == 16
        assert domain.max_value == 15
        assert domain.is_identity
        assert domain.map_value(7) == 7

    def test_identity_clamps_out_of_range(self):
        domain = Domain.identity(4)
        assert domain.map_value(-3) == 0
        assert domain.map_value(99) == 15

    def test_rescaling_maps_endpoints_to_extremes(self):
        domain = Domain(num_bits=4, raw_min=100, raw_max=200)
        assert domain.map_value(100) == 0
        assert domain.map_value(200) == 15
        assert 0 <= domain.map_value(150) <= 15

    def test_rescaling_is_monotone(self):
        domain = Domain(num_bits=5, raw_min=0, raw_max=1_000_000)
        values = np.linspace(0, 1_000_000, 500).astype(np.int64)
        mapped = domain.map_values(values)
        assert np.all(np.diff(mapped) >= 0)

    def test_map_values_matches_map_value(self):
        domain = Domain(num_bits=6, raw_min=-50, raw_max=977)
        values = np.array([-50, -3, 0, 44, 977, 1000])
        vectorised = domain.map_values(values)
        scalar = [domain.map_value(int(v)) for v in values]
        assert vectorised.tolist() == scalar

    def test_degenerate_raw_domain(self):
        domain = Domain(num_bits=4, raw_min=5, raw_max=5)
        assert domain.map_value(5) == 0
        assert domain.map_values(np.array([5, 5])).tolist() == [0, 0]

    def test_for_collection(self):
        starts = np.array([10, 20, 30])
        ends = np.array([15, 25, 90])
        domain = Domain.for_collection(starts, ends, num_bits=8)
        assert domain.raw_min == 10
        assert domain.raw_max == 90

    def test_for_empty_collection(self):
        domain = Domain.for_collection(np.array([]), np.array([]), num_bits=4)
        assert domain.is_identity

    def test_invalid_bits(self):
        with pytest.raises(DomainError):
            Domain(num_bits=0)

    def test_invalid_bounds(self):
        with pytest.raises(DomainError):
            Domain(num_bits=4, raw_min=10, raw_max=5)

    def test_prefix_and_partitions(self):
        domain = Domain.identity(4)
        assert domain.prefix(4, 9) == 9
        assert domain.prefix(3, 9) == 4
        assert domain.prefix(0, 9) == 0
        assert domain.partitions_at(3) == 8
        with pytest.raises(DomainError):
            domain.partitions_at(5)

    def test_partition_bounds(self):
        domain = Domain.identity(4)
        assert domain.partition_bounds(4, 5) == (5, 5)
        assert domain.partition_bounds(3, 4) == (8, 9)
        assert domain.partition_bounds(0, 0) == (0, 15)

    def test_relevant_range_matches_paper_example(self):
        # query [5, 9] in the 4-bit domain: figure 6 of the paper
        domain = Domain.identity(4)
        assert domain.relevant_range(4, 5, 9) == (5, 9)
        assert domain.relevant_range(3, 5, 9) == (2, 4)
        assert domain.relevant_range(2, 5, 9) == (1, 2)
        assert domain.relevant_range(1, 5, 9) == (0, 1)
        assert domain.relevant_range(0, 5, 9) == (0, 0)
