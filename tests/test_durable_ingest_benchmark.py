"""Acceptance benchmark for the durability tentpole.

The PR's bar, on a 40k-interval TAXIS-scale collection with a 2k-op
interleaved insert/delete stream per repeat:

* under ``fsync="interval"`` (appends buffered, flush + fsync on the
  interval clock) WAL-on ingest stays within **2x** of the WAL-off
  baseline -- durability by default must not halve ingest;
* every durable mode's WAL directory, reopened, recovers *exactly* the
  applied stream (asserted inside the driver before any ratio is read).

``fsync="always"`` pays a real fsync per op and is deliberately not
gated -- its cost is the price of per-op crash durability, reported in
``benchmark_results/durable_ingest.txt`` but bounded by hardware, not by
this code.
"""

import pytest

from repro.bench.experiments import durable_ingest

CARDINALITY = 40_000
NUM_UPDATES = 2_000

#: below this WAL-off baseline the runner is so slow/contended that the
#: ratio measures scheduler noise, not WAL overhead
MIN_BASELINE_OPS_PER_S = 20_000.0


@pytest.fixture(scope="module")
def rows():
    return durable_ingest(
        cardinality=CARDINALITY, num_updates=NUM_UPDATES, repeats=3
    )


def test_interval_fsync_within_2x_of_wal_off(rows):
    by_mode = {r["mode"]: r for r in rows}
    baseline = by_mode["no-wal"]
    interval = by_mode["fsync-interval"]
    ratio = interval["slowdown"]
    if baseline["ops_per_s"] < MIN_BASELINE_OPS_PER_S:
        pytest.skip(
            f"fsync=interval ingest measured {ratio:.2f}x of WAL-off, but the "
            f"WAL-off baseline itself only reached "
            f"{baseline['ops_per_s']:,.0f} ops/s (< "
            f"{MIN_BASELINE_OPS_PER_S:,.0f}) -- this runner is too contended "
            f"for the 2x gate to measure WAL overhead"
        )
    assert ratio <= 2.0, (
        f"fsync=interval ingest fell to {ratio:.2f}x of the WAL-off baseline "
        f"({interval['ops_per_s']:,.0f} vs {baseline['ops_per_s']:,.0f} "
        f"ops/s) -- the durable-by-default policy must stay within 2x"
    )


def test_every_durable_mode_recovered_exactly(rows):
    # the driver reopens each mode's WAL directory and raises if the
    # recovered live set diverges from the applied stream
    durable = [r for r in rows if r["fsync"]]
    assert {r["mode"] for r in durable} == {
        "fsync-off", "fsync-interval", "fsync-always"
    }
    assert all(r["recovered_exact"] for r in durable)
    assert all(r["ops_per_s"] > 0 for r in rows)
