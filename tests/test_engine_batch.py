"""Tests for batch execution: query_batch hooks, execute_batch, run_batch."""

import numpy as np
import pytest

from repro.core.interval import IntervalCollection, Query
from repro.engine import IntervalStore, create_index, execute_batch

BATCH_BACKENDS = ("naive", "grid1d", "timeline", "hintm_opt")


@pytest.fixture(scope="module")
def batch_collection():
    rng = np.random.default_rng(5)
    starts = rng.integers(0, 10_000, size=600)
    lengths = rng.integers(0, 500, size=600)
    return IntervalCollection(ids=np.arange(600), starts=starts, ends=starts + lengths)


@pytest.fixture(scope="module")
def batch_queries():
    rng = np.random.default_rng(6)
    queries = []
    for _ in range(40):
        start = int(rng.integers(0, 10_000))
        queries.append(Query(start, start + int(rng.integers(0, 1_000))))
    queries.append(Query.stabbing(5_000))
    return queries


class TestQueryBatchRegression:
    @pytest.mark.parametrize("backend", BATCH_BACKENDS)
    def test_query_batch_matches_per_query_results(
        self, batch_collection, batch_queries, backend
    ):
        """The batch hook must agree with one-at-a-time evaluation, per position."""
        index = create_index(backend, batch_collection)
        batched = index.query_batch(batch_queries)
        assert len(batched) == len(batch_queries)
        for query, ids in zip(batch_queries, batched):
            assert sorted(ids) == sorted(index.query(query)), (backend, query)

    def test_query_batch_empty_workload(self, batch_collection):
        index = create_index("naive", batch_collection)
        assert index.query_batch([]) == []


class TestExecuteBatch:
    def test_materialising_mode(self, batch_collection, batch_queries):
        index = create_index("hintm_opt", batch_collection)
        result = execute_batch(index, batch_queries)
        assert len(result) == len(batch_queries)
        assert result.counts == [len(ids) for ids in result.ids]
        assert result.total_results == sum(result.counts)
        assert result.seconds >= 0
        assert result.queries_per_second > 0
        assert list(result) == result.ids

    def test_count_only_mode(self, batch_collection, batch_queries):
        index = create_index("hintm_opt", batch_collection)
        result = execute_batch(index, batch_queries, count_only=True)
        assert result.ids is None
        expected = [len(index.query(query)) for query in batch_queries]
        assert result.counts == expected
        with pytest.raises(ValueError):
            iter(result)

    def test_empty_workload(self, batch_collection):
        index = create_index("naive", batch_collection)
        result = execute_batch(index, [])
        assert len(result) == 0
        assert result.queries_per_second == 0.0
        assert result.total_results == 0


class TestStoreRunBatch:
    def test_run_batch_matches_builder(self, batch_collection, batch_queries):
        store = IntervalStore.open(batch_collection, backend="hintm_opt")
        result = store.run_batch(batch_queries)
        for query, ids in zip(batch_queries, result.ids):
            via_builder = store.query().overlapping(query.start, query.end).ids()
            assert sorted(ids) == sorted(via_builder)

    def test_run_batch_count_only_uses_fast_path(self, batch_collection, batch_queries):
        store = IntervalStore.open(batch_collection, backend="hintm_opt")
        result = store.run_batch(batch_queries, count_only=True)
        for query, count in zip(batch_queries, result.counts):
            assert count == store.query().overlapping(query.start, query.end).count()


class TestHarnessUsesBatch:
    def test_measure_throughput_drives_query_batch(self, batch_collection, batch_queries):
        from repro.bench.harness import measure_throughput

        calls = []
        index = create_index("naive", batch_collection)
        original = index.query_batch
        index.query_batch = lambda queries: calls.append(len(queries)) or original(queries)
        throughput = measure_throughput(index, batch_queries, repeats=2)
        assert throughput > 0
        assert calls == [len(batch_queries)] * 2
