"""Tests for the engine backend registry and factory."""

import pytest

from repro.core.domain import bit_length_for
from repro.core.errors import DomainError, UnknownBackendError
from repro.core.interval import IntervalCollection, Query
from repro.engine import (
    IntervalStore,
    available_backends,
    backend_specs,
    create_index,
    get_backend,
    get_spec,
    register_backend,
    resolve_backend,
)
from repro.hint.model import DatasetStatistics, estimate_m_opt

ALL_BACKENDS = (
    "naive",
    "interval_tree",
    "grid1d",
    "timeline",
    "period",
    "hint_cf",
    "hintm",
    "hintm_sub",
    "hintm_opt",
    "hintm_hybrid",
)

#: small-scale construction parameters, passed identically to the registry
#: factory and to the legacy ``cls.build`` path
SMALL_KWARGS = {
    "grid1d": {"num_partitions": 32},
    "timeline": {"num_checkpoints": 20},
    "period": {"num_coarse_partitions": 10, "num_levels": 3},
    "hintm": {"num_bits": 8},
    "hintm_sub": {"num_bits": 8},
    "hintm_opt": {"num_bits": 8},
    "hintm_hybrid": {"num_bits": 8},
}


def _queries(collection):
    lo, hi = collection.span()
    third = (hi - lo) // 3
    return [
        Query(lo + third, lo + third + (hi - lo) // 50),
        Query(lo, hi),
        Query.stabbing(lo + third),
    ]


class TestRegistry:
    def test_all_ten_backends_registered(self):
        assert set(ALL_BACKENDS) <= set(available_backends())

    def test_aliases_resolve_to_canonical_names(self):
        assert resolve_backend("hint-m-opt") == "hintm_opt"
        assert resolve_backend("1d-grid") == "grid1d"
        assert resolve_backend("interval-tree") == "interval_tree"
        assert resolve_backend("hint") == "hint_cf"
        assert resolve_backend("naive-scan") == "naive"

    def test_unknown_backend_raises(self, synthetic_collection):
        with pytest.raises(UnknownBackendError):
            create_index("b-tree", synthetic_collection)
        # UnknownBackendError is a KeyError for legacy callers
        with pytest.raises(KeyError):
            resolve_backend("b-tree")

    def test_duplicate_registration_rejected(self):
        from repro.baselines.naive import NaiveIndex  # already holds "naive"

        with pytest.raises(ValueError):

            @register_backend("naive")
            class Impostor(NaiveIndex):
                pass

    def test_specs_expose_class_and_paper_section(self):
        by_name = {spec.name: spec for spec in backend_specs()}
        assert by_name["hintm_opt"].cls.__name__ == "OptimizedHINTm"
        assert "4.2" in by_name["hintm_opt"].paper_section
        assert by_name["hintm_opt"].legacy_name == "hint-m-opt"


class TestCreateIndex:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_every_backend_constructible_with_defaults(self, synthetic_collection, name):
        index = create_index(name, synthetic_collection)
        assert len(index) == len(synthetic_collection)

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_store_matches_legacy_query_path(self, synthetic_collection, name):
        """store.query().overlapping(a, b).ids() == legacy build(...).query(Query(a, b))."""
        kwargs = dict(SMALL_KWARGS.get(name, {}))
        if name == "hint_cf":
            _, hi = synthetic_collection.span()
            kwargs["num_bits"] = bit_length_for(hi + 1)
        store = IntervalStore(create_index(name, synthetic_collection, **kwargs))
        legacy = get_backend(name).build(synthetic_collection, **kwargs)
        for query in _queries(synthetic_collection):
            via_store = sorted(store.query().overlapping(query.start, query.end).ids())
            via_legacy = sorted(legacy.query(query))
            assert via_store == via_legacy, (name, query)
            # and both agree with the brute-force oracle
            oracle = sorted(synthetic_collection.query_ids(query).tolist())
            assert via_store == oracle, (name, query)

    def test_auto_num_bits_uses_the_model(self, synthetic_collection):
        index = create_index("hintm_opt", synthetic_collection, num_bits="auto")
        stats = DatasetStatistics.from_collection(synthetic_collection)
        expected = max(1, min(estimate_m_opt(stats, 0.001 * stats.domain_length), 16))
        assert index.num_bits == expected

    def test_auto_num_bits_honours_query_extent_hint(self, synthetic_collection):
        broad = create_index(
            "hintm_opt", synthetic_collection, num_bits="auto",
            query_extent=synthetic_collection.domain_length() // 2,
        )
        assert 1 <= broad.num_bits <= 16

    def test_discrete_backend_defaults_to_exact_bits(self, synthetic_collection):
        index = create_index("hint_cf", synthetic_collection)
        _, hi = synthetic_collection.span()
        assert index.num_bits == bit_length_for(hi + 1)

    def test_discrete_backend_rejects_negative_endpoints(self):
        collection = IntervalCollection.from_pairs([(-5, 3), (1, 2)])
        with pytest.raises(DomainError):
            create_index("hint_cf", collection)

    def test_legacy_alias_builds_same_class(self, synthetic_collection):
        via_alias = create_index("hint-m-opt", synthetic_collection, num_bits=7)
        assert type(via_alias).__name__ == "OptimizedHINTm"
        assert via_alias.num_bits == 7

    def test_empty_collection(self):
        index = create_index("hintm_opt", IntervalCollection.empty(), num_bits="auto")
        assert len(index) == 0
        assert index.query(Query(0, 10)) == []


class TestHarnessShim:
    def test_legacy_builder_names_preserved(self):
        from repro.bench.harness import INDEX_BUILDERS

        assert set(INDEX_BUILDERS) == {
            "naive-scan", "interval-tree", "1d-grid", "timeline", "period-index",
            "hint", "hint-m", "hint-m-subs", "hint-m-opt", "hint-m-hybrid",
        }

    def test_build_index_accepts_canonical_names(self, synthetic_collection):
        from repro.bench.harness import build_index

        index = build_index("hintm_opt", synthetic_collection, num_bits=7)
        assert index.num_bits == 7

    def test_open_store_defaults_to_auto_tuning(self, synthetic_collection):
        store = IntervalStore.open(synthetic_collection)
        assert store.backend == "hintm_opt"
        assert 1 <= store.index.num_bits <= 16


def test_get_spec_flags():
    assert get_spec("hintm_opt").tunable
    assert not get_spec("grid1d").tunable
    assert get_spec("hint_cf").discrete_domain
