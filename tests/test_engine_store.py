"""Tests for the IntervalStore facade, fluent builder and lazy result sets."""

import numpy as np
import pytest

from repro.core.allen import AllenRelation, filter_by_relation
from repro.core.base import IntervalIndex, QueryStats
from repro.core.errors import InvalidQueryError, ReproError, UnsupportedQueryError
from repro.core.interval import Interval, IntervalCollection, Query
from repro.engine import IntervalStore

#: backends exercised against ground truth (one per implementation family)
CHECKED_BACKENDS = ("naive", "grid1d", "interval_tree", "hintm_opt")


@pytest.fixture(scope="module")
def random_collection():
    rng = np.random.default_rng(42)
    starts = rng.integers(0, 5_000, size=800)
    lengths = rng.integers(0, 400, size=800)
    return IntervalCollection(
        ids=np.arange(800), starts=starts, ends=starts + lengths
    )


@pytest.fixture(scope="module")
def random_queries():
    rng = np.random.default_rng(7)
    queries = []
    for _ in range(60):
        start = int(rng.integers(0, 5_400))
        queries.append(Query(start, start + int(rng.integers(0, 600))))
    queries.append(Query(0, 6_000))          # everything
    queries.append(Query(100_000, 100_100))  # nothing
    queries.append(Query.stabbing(2_500))
    return queries


class TestBuilderAgainstGroundTruth:
    @pytest.mark.parametrize("backend", CHECKED_BACKENDS)
    def test_ids_count_exists_agree_with_oracle(
        self, random_collection, random_queries, backend
    ):
        store = IntervalStore.open(random_collection, backend=backend)
        for query in random_queries:
            oracle = sorted(random_collection.query_ids(query).tolist())
            builder = store.query().overlapping(query.start, query.end)
            assert sorted(builder.ids()) == oracle
            assert store.query().overlapping(query.start, query.end).count() == len(oracle)
            assert store.query().overlapping(query.start, query.end).exists() == bool(oracle)

    @pytest.mark.parametrize("backend", CHECKED_BACKENDS)
    def test_limit(self, random_collection, random_queries, backend):
        store = IntervalStore.open(random_collection, backend=backend)
        for query in random_queries[:20]:
            full = set(random_collection.query_ids(query).tolist())
            limited = store.query().overlapping(query.start, query.end).limit(5).ids()
            assert len(limited) == min(5, len(full))
            assert set(limited) <= full
            count = store.query().overlapping(query.start, query.end).limit(5).count()
            assert count == min(5, len(full))

    def test_stabbing(self, random_collection):
        store = IntervalStore.open(random_collection, backend="hintm_opt")
        oracle = sorted(random_collection.query_ids(Query.stabbing(1_234)).tolist())
        assert sorted(store.query().stabbing(1_234).ids()) == oracle
        assert sorted(store.stab(1_234)) == oracle

    def test_relation_refinement(self, random_collection):
        store = IntervalStore.open(random_collection, backend="hintm_opt")
        query = Query(1_000, 3_000)
        expected = sorted(
            interval.id
            for interval in filter_by_relation(
                list(random_collection), query, AllenRelation.DURING
            )
        )
        got = sorted(
            store.query()
            .overlapping(query.start, query.end)
            .relation(AllenRelation.DURING)
            .ids()
        )
        assert got == expected
        count = (
            store.query()
            .overlapping(query.start, query.end)
            .relation(AllenRelation.DURING)
            .count()
        )
        assert count == len(expected)


class TestBuilderValidation:
    def test_missing_target_rejected(self, random_collection):
        store = IntervalStore.open(random_collection, backend="naive")
        with pytest.raises(InvalidQueryError):
            store.query().ids()

    def test_bad_limit_rejected(self, random_collection):
        store = IntervalStore.open(random_collection, backend="naive")
        with pytest.raises(InvalidQueryError):
            store.query().overlapping(0, 10).limit(0)

    def test_bad_relation_rejected(self, random_collection):
        store = IntervalStore.open(random_collection, backend="naive")
        with pytest.raises(InvalidQueryError):
            store.query().overlapping(0, 10).relation("during")


class _NoLookupIndex(IntervalIndex):
    """A minimal backend that does not retain intervals (no ``_interval_lookup``)."""

    name = "no-lookup"

    def __init__(self, collection):
        self._ids = [int(i) for i in collection.ids]

    @classmethod
    def build(cls, collection, **kwargs):
        return cls(collection)

    def query(self, query):
        return list(self._ids)

    def __len__(self):
        return len(self._ids)


class TestUnsupportedQueries:
    def test_relation_on_lookup_free_backend_raises_clear_error(self, tiny_collection):
        store = IntervalStore(_NoLookupIndex.build(tiny_collection))
        with pytest.raises(UnsupportedQueryError) as excinfo:
            store.query().overlapping(0, 5).relation(AllenRelation.BEFORE).ids()
        assert "no-lookup" in str(excinfo.value)
        assert "BEFORE" in str(excinfo.value)

    def test_unsupported_query_error_hierarchy(self):
        # facade consumers catch ReproError; legacy callers caught NotImplementedError
        assert issubclass(UnsupportedQueryError, ReproError)
        assert issubclass(UnsupportedQueryError, NotImplementedError)

    def test_query_relation_directly_raises_for_before_after(self, tiny_collection):
        index = _NoLookupIndex.build(tiny_collection)
        with pytest.raises(UnsupportedQueryError):
            index.query_relation(Query(0, 5), AllenRelation.AFTER)


class TestResultSet:
    def test_ids_cached_and_copied(self, random_collection):
        store = IntervalStore.open(random_collection, backend="naive")
        results = store.query().overlapping(0, 2_000).build()
        first = results.ids()
        first.append(-1)  # caller mutation must not leak into the cache
        assert -1 not in results.ids()
        assert results.count() == len(results.ids())

    def test_container_protocol(self, random_collection):
        store = IntervalStore.open(random_collection, backend="naive")
        results = store.query().overlapping(0, 2_000).build()
        oracle = set(random_collection.query_ids(Query(0, 2_000)).tolist())
        assert set(results) == oracle
        assert len(results) == len(oracle)
        assert bool(results) is bool(oracle)
        assert next(iter(oracle)) in results

    def test_stats_reports_result_count(self, random_collection):
        store = IntervalStore.open(random_collection, backend="hintm_opt")
        stats = store.query().overlapping(0, 2_000).stats()
        assert isinstance(stats, QueryStats)
        assert stats.results == store.query().overlapping(0, 2_000).count()


class TestStoreLifecycle:
    def test_from_pairs_and_from_intervals(self):
        store = IntervalStore.from_pairs([(1, 5), (3, 9)], backend="naive")
        assert len(store) == 2
        store = IntervalStore.from_intervals(
            [Interval(7, 0, 4), Interval(8, 2, 3)], backend="naive"
        )
        assert sorted(store.query().stabbing(2).ids()) == [7, 8]

    def test_insert_and_delete_passthrough(self):
        store = IntervalStore.from_pairs([(0, 10), (20, 30)], backend="naive")
        store.insert(Interval(99, 5, 25))
        assert 99 in store.query().stabbing(22).build()
        assert store.delete(99) is True
        assert store.delete(99) is False
        assert 99 not in store.query().stabbing(22).build()

    def test_memory_bytes_delegates(self):
        store = IntervalStore.from_pairs([(0, 10)], backend="naive")
        assert store.memory_bytes() == store.index.memory_bytes()

    def test_wrapping_a_prebuilt_index_infers_backend(self, tiny_collection):
        from repro.baselines.grid1d import Grid1D

        store = IntervalStore(Grid1D.build(tiny_collection, num_partitions=8))
        assert store.backend == "grid1d"
