"""Epoch-based read snapshots: atomic partition publication under readers.

The contract under test: every query pins one :class:`repro.engine.sharded.Epoch`
and runs entirely against it, so a query concurrent with ``repartition()``
(or a full maintenance pass) sees either the old partition state or the new
one -- never new cuts with old shards, or a journal that disagrees with the
locator.  The stress tests drive continuous readers against a live
maintenance/update mix and assert every answer against a brute-force oracle
over the untouched core of the data.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.interval import Interval, IntervalCollection, Query
from repro.engine import IntervalStore
from repro.engine.maintenance import MaintenanceConfig
from repro.engine.sharded import ShardedIndex


def _collection(n=500, span=20_000, seed=9):
    rng = np.random.default_rng(seed)
    starts = rng.integers(0, span, n)
    ends = starts + rng.integers(0, span // 40, n)
    return IntervalCollection.from_pairs(
        [(int(s), int(e)) for s, e in zip(starts, ends)]
    )


def _oracle(live, query):
    return {
        interval_id
        for interval_id, (start, end) in live.items()
        if start <= query.end and query.start <= end
    }


# --------------------------------------------------------------------------- #
# epoch mechanics
# --------------------------------------------------------------------------- #
class TestEpochMechanics:
    def test_epoch_zero_at_build_and_stable_under_queries(self):
        index = ShardedIndex(_collection(), num_shards=4)
        assert index.epoch == 0
        index.query(Query(0, 1_000))
        index.query_count(Query(0, 1_000))
        assert index.epoch == 0
        index.close()

    def test_repartition_publishes_a_new_epoch(self):
        index = ShardedIndex(_collection(), num_shards=4, backend="hintm_hybrid")
        index.insert(Interval(10_000, 0, 50))  # drift, so repartition plans fresh
        old_epoch = index._epoch
        assert index.repartition(strategy="balanced")
        assert index.epoch == old_epoch.epoch_id + 1
        assert index._epoch is not old_epoch

    def test_noop_repartition_keeps_the_epoch(self):
        index = ShardedIndex(_collection(), num_shards=4)
        epoch = index.epoch
        assert not index.repartition()  # same cuts -> nothing installed
        assert index.epoch == epoch
        index.close()

    def test_pinned_epoch_answers_after_repartition(self):
        """A reader holding the old epoch keeps a complete, queryable state."""
        collection = _collection()
        index = ShardedIndex(collection, num_shards=4, backend="hintm_hybrid")
        query = Query(0, 20_500)
        expected = set(index.query(query))
        pinned = index._epoch
        index.insert(Interval(10_000, 3, 20_400))
        assert index.repartition(strategy="balanced")
        # the pinned epoch still has its own consistent plan/shards/journal;
        # in-place updates that preceded the repartition are visible, the
        # new epoch's geometry is not
        got = index._query_epoch(pinned, query)
        assert set(got) == expected | {10_000}
        assert pinned.plan.cuts != index.plan.cuts
        index.close()

    def test_lazy_result_set_survives_concurrent_repartition(self):
        collection = _collection()
        store = IntervalStore.open(
            collection, "hintm_hybrid", num_shards=4, strategy="equi_width"
        )
        handle = store.query().overlapping(0, 20_500).build()  # lazy: pins shards
        expected = set(
            int(i)
            for i, s, e in zip(collection.ids, collection.starts, collection.ends)
        )
        store.insert(Interval(10_000, 0, 10))
        store.index.repartition(strategy="balanced")
        assert set(handle.ids()) >= expected  # old-epoch shards, still complete
        store.close()

    def test_epoch_in_query_stats(self):
        index = ShardedIndex(_collection(), num_shards=2, backend="hintm_hybrid")
        _, stats = index.query_with_stats(Query(0, 20_500))
        assert stats.extra["epoch"] == 0.0
        index.insert(Interval(10_000, 0, 50))
        index.repartition(strategy="balanced")
        _, stats = index.query_with_stats(Query(0, 20_500))
        assert stats.extra["epoch"] == 1.0
        index.close()


# --------------------------------------------------------------------------- #
# reader/maintenance interleaving stress (the PR's acceptance scenario)
# --------------------------------------------------------------------------- #
class TestReaderMaintenanceStress:
    """Readers never block and never see a half-installed plan.

    The core intervals (ids < 10_000) are never updated, so every query's
    answer must contain exactly the core oracle's ids for its range at all
    times -- a reader catching a half-installed partition would drop a
    shard's worth of core results (or raise).  Churn intervals (ids >=
    10_000) come and go concurrently; results are only required to stay
    inside the known universe.
    """

    CHURN_BASE = 10_000

    def _run_stress(self, store, collection, seconds=2.0, readers=3):
        lo, hi = collection.span()
        core = {
            int(i): (int(s), int(e))
            for i, s, e in zip(collection.ids, collection.starts, collection.ends)
        }
        rng = np.random.default_rng(17)
        queries = []
        for _ in range(25):
            a = int(rng.integers(lo, hi))
            b = a + int(rng.integers(0, hi - lo))
            queries.append(Query(a, b))
        expected = {q: _oracle(core, q) for q in queries}
        stop = threading.Event()
        failures = []

        def reader():
            try:
                while not stop.is_set():
                    for query in queries:
                        got = set(store.index.query(query))
                        core_hits = {i for i in got if i < self.CHURN_BASE}
                        if core_hits != expected[query]:
                            failures.append(
                                (query, sorted(core_hits ^ expected[query]))
                            )
                            stop.set()
                            return
                        count = store.index.query_count(query)
                        if count < len(expected[query]):
                            failures.append((query, "count", count))
                            stop.set()
                            return
                        if not expected[query]:
                            continue
                        if not store.index.query_exists(query):
                            failures.append((query, "exists"))
                            stop.set()
                            return
            except Exception as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)
                stop.set()

        threads = [threading.Thread(target=reader) for _ in range(readers)]
        for thread in threads:
            thread.start()

        churn_rng = np.random.default_rng(23)
        next_id = self.CHURN_BASE
        live_churn = []
        deadline = time.monotonic() + seconds
        try:
            while time.monotonic() < deadline and not stop.is_set():
                # a burst of churn updates...
                for _ in range(20):
                    start = int(churn_rng.integers(lo, hi))
                    end = start + int(churn_rng.integers(0, (hi - lo) // 10))
                    store.insert(Interval(next_id, start, end))
                    live_churn.append(next_id)
                    next_id += 1
                while len(live_churn) > 100:
                    assert store.delete(live_churn.pop(0))
                # ...then the full maintenance surface area under readers
                store.maintain(force=True)
                store.index.repartition(strategy="balanced")
                store.index.repartition(strategy="equi_width")
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not failures, f"reader diverged: {failures[:3]}"

    def test_queries_survive_maintenance_and_repartition(self):
        collection = _collection(n=400)
        store = IntervalStore.open(collection, "hintm_hybrid", num_shards=4)
        try:
            self._run_stress(store, collection)
            assert store.index.epoch > 0, "stress never installed a new epoch"
        finally:
            store.close()

    def test_queries_survive_background_maintenance_daemon(self):
        collection = _collection(n=300)
        store = IntervalStore.open(collection, "hintm_hybrid", num_shards=4)
        coordinator = store.maintenance(
            config=MaintenanceConfig(idle_seconds=0.0, interval_seconds=0.05)
        )
        coordinator.start()
        try:
            self._run_stress(store, collection, seconds=1.5, readers=2)
            assert coordinator.running
        finally:
            store.close()
        assert not coordinator.running

    def test_replicated_stress_with_mid_run_replica_kill(self):
        collection = _collection(n=300)
        store = IntervalStore.open(
            collection, "hintm_hybrid", num_shards=2, replication_factor=2
        )
        try:
            kill_timer = threading.Timer(
                0.5, lambda: store.index.kill_replica(0, replica_id=1)
            )
            kill_timer.start()
            self._run_stress(store, collection, seconds=1.5, readers=2)
            kill_timer.cancel()
            # maintenance inside the stress loop heals kills; nothing stays dark
            assert all(any(row) for row in store.index.replica_health())
        finally:
            store.close()


class TestResidencySpecPinning:
    """Process-batch residency specs follow the pinned epoch (regression).

    A batch groups its queries by the pinned epoch's cuts; the spec shipped
    to workers must carry those same cuts (and a token distinct from the
    new epoch's), or a concurrent repartition would make workers build
    new-cut shards for old-cut query groupings.
    """

    def test_spec_uses_pinned_epoch_cuts_after_repartition(self):
        pytest.importorskip("multiprocessing.shared_memory")
        from repro.engine.executor import ProcessExecutor

        collection = _collection(n=400)
        executor = ProcessExecutor(workers=2)
        index = ShardedIndex(
            collection,
            backend="hintm_hybrid",
            num_shards=4,
            strategy="equi_width",
            executor=executor,
        )
        try:
            pinned = index._epoch
            index.insert(Interval(10_000, 0, 40))
            assert index.repartition(strategy="balanced")
            assert index._epoch.plan.cuts != pinned.plan.cuts
            old_spec = index._residency_spec(pinned)
            new_spec = index._residency_spec(index._epoch)
            assert old_spec.cuts == pinned.plan.cuts
            assert new_spec.cuts == index._epoch.plan.cuts
            assert old_spec.token != new_spec.token
        finally:
            index.close()
            executor.close()
