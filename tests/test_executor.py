"""Tests for the pluggable executor layer (repro.engine.executor)."""

import threading

import pytest

from repro.engine.batch import execute_batch
from repro.engine.executor import (
    Executor,
    SerialExecutor,
    ThreadedExecutor,
    resolve_executor,
    split_chunks,
)
from repro.engine.registry import create_index


class TestSplitChunks:
    def test_concatenation_restores_input(self):
        items = list(range(103))
        for n in (1, 2, 3, 7, 103, 500):
            chunks = split_chunks(items, n)
            assert [x for chunk in chunks for x in chunk] == items
            assert all(chunk for chunk in chunks)  # no empty chunks
            assert len(chunks) <= n

    def test_near_equal_sizes(self):
        sizes = [len(c) for c in split_chunks(list(range(10)), 3)]
        assert max(sizes) - min(sizes) <= 1

    def test_empty_input(self):
        assert split_chunks([], 4) == []


class TestSerialExecutor:
    def test_map_preserves_order(self):
        assert SerialExecutor().map(lambda x: x * 2, [3, 1, 2]) == [6, 2, 4]

    def test_workers_is_one(self):
        assert SerialExecutor().workers == 1


class TestThreadedExecutor:
    def test_map_preserves_order(self):
        with ThreadedExecutor(4) as executor:
            assert executor.map(lambda x: x * x, list(range(50))) == [
                x * x for x in range(50)
            ]

    def test_actually_runs_on_worker_threads(self):
        seen = set()

        def record(_x):
            seen.add(threading.current_thread().name)

        with ThreadedExecutor(4) as executor:
            executor.map(record, list(range(64)))
        assert any(name.startswith("repro-exec") for name in seen)

    def test_single_item_runs_inline(self):
        executor = ThreadedExecutor(4)
        executor.map(lambda x: x, [1])
        assert executor._pool is None  # no pool spun up for trivial work
        executor.close()

    def test_close_is_idempotent(self):
        executor = ThreadedExecutor(2)
        executor.map(lambda x: x, [1, 2, 3])
        executor.close()
        executor.close()

    def test_propagates_exceptions(self):
        def boom(x):
            raise ValueError(x)

        with ThreadedExecutor(2) as executor:
            with pytest.raises(ValueError):
                executor.map(boom, [1, 2, 3, 4])


class TestResolveExecutor:
    def test_defaults_to_serial(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor(1), SerialExecutor)
        assert isinstance(resolve_executor(0), SerialExecutor)

    def test_worker_counts(self):
        executor = resolve_executor(3)
        assert isinstance(executor, ThreadedExecutor)
        assert executor.workers == 3

    def test_threads_keyword(self):
        assert isinstance(resolve_executor("threads"), ThreadedExecutor)

    def test_instances_pass_through(self):
        executor = SerialExecutor()
        assert resolve_executor(executor) is executor

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            resolve_executor("fork-bomb")
        with pytest.raises(TypeError):
            resolve_executor(2.5)
        with pytest.raises(TypeError):
            resolve_executor(True)

    def test_custom_executor_subclass(self):
        class Doubler(Executor):
            name = "doubler"

            def map(self, fn, items):
                return [fn(item) for item in items]

        assert resolve_executor(Doubler()).name == "doubler"


class TestExecuteBatchWithExecutor:
    def test_parallel_matches_serial(self, synthetic_collection, synthetic_queries):
        index = create_index("hintm_opt", synthetic_collection, num_bits=8)
        serial = execute_batch(index, synthetic_queries)
        with ThreadedExecutor(4) as executor:
            parallel = execute_batch(index, synthetic_queries, executor=executor)
        assert [sorted(ids) for ids in parallel.ids] == [
            sorted(ids) for ids in serial.ids
        ]
        assert parallel.counts == serial.counts

    def test_parallel_count_only(self, synthetic_collection, synthetic_queries):
        index = create_index("grid1d", synthetic_collection, num_partitions=64)
        serial = execute_batch(index, synthetic_queries, count_only=True)
        with ThreadedExecutor(3) as executor:
            parallel = execute_batch(
                index, synthetic_queries, count_only=True, executor=executor
            )
        assert parallel.ids is None
        assert parallel.counts == serial.counts
