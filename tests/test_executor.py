"""Tests for the pluggable executor layer (repro.engine.executor)."""

import threading

import pytest

from repro.engine.batch import execute_batch
from repro.engine.executor import (
    EXECUTOR_KINDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
    resolve_executor,
    split_chunks,
)
from repro.engine.registry import create_index


class TestSplitChunks:
    def test_concatenation_restores_input(self):
        items = list(range(103))
        for n in (1, 2, 3, 7, 103, 500):
            chunks = split_chunks(items, n)
            assert [x for chunk in chunks for x in chunk] == items
            assert all(chunk for chunk in chunks)  # no empty chunks
            assert len(chunks) <= n

    def test_near_equal_sizes(self):
        sizes = [len(c) for c in split_chunks(list(range(10)), 3)]
        assert max(sizes) - min(sizes) <= 1

    def test_empty_input(self):
        assert split_chunks([], 4) == []


class TestSerialExecutor:
    def test_map_preserves_order(self):
        assert SerialExecutor().map(lambda x: x * 2, [3, 1, 2]) == [6, 2, 4]

    def test_workers_is_one(self):
        assert SerialExecutor().workers == 1


class TestThreadedExecutor:
    def test_map_preserves_order(self):
        with ThreadedExecutor(4) as executor:
            assert executor.map(lambda x: x * x, list(range(50))) == [
                x * x for x in range(50)
            ]

    def test_actually_runs_on_worker_threads(self):
        seen = set()

        def record(_x):
            seen.add(threading.current_thread().name)

        with ThreadedExecutor(4) as executor:
            executor.map(record, list(range(64)))
        assert any(name.startswith("repro-exec") for name in seen)

    def test_single_item_runs_inline(self):
        executor = ThreadedExecutor(4)
        executor.map(lambda x: x, [1])
        assert executor._pool is None  # no pool spun up for trivial work
        executor.close()

    def test_close_is_idempotent(self):
        executor = ThreadedExecutor(2)
        executor.map(lambda x: x, [1, 2, 3])
        executor.close()
        executor.close()

    def test_propagates_exceptions(self):
        def boom(x):
            raise ValueError(x)

        with ThreadedExecutor(2) as executor:
            with pytest.raises(ValueError):
                executor.map(boom, [1, 2, 3, 4])


def _square(x):
    """Module-level so process pools can pickle it."""
    return x * x


def _pid_of(_x):
    import os

    return os.getpid()


class TestProcessExecutor:
    def test_map_preserves_order(self):
        with ProcessExecutor(2) as executor:
            assert executor.map(_square, list(range(20))) == [x * x for x in range(20)]

    def test_runs_in_worker_processes(self):
        import os

        with ProcessExecutor(2) as executor:
            pids = set(executor.map(_pid_of, list(range(8))))
        assert os.getpid() not in pids

    def test_single_item_runs_inline(self):
        executor = ProcessExecutor(4)
        assert executor.map(_square, [3]) == [9]
        assert executor._pool is None  # no pool spun up for trivial work
        executor.close()

    def test_close_is_idempotent(self):
        executor = ProcessExecutor(2)
        executor.map(_square, [1, 2, 3])
        executor.close()
        executor.close()

    def test_start_method_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_START_METHOD", "spawn")
        assert ProcessExecutor(2).start_method == "spawn"

    def test_executor_kinds_lists_all_three(self):
        assert [name for name, _ in EXECUTOR_KINDS] == ["serial", "threads", "processes"]


class TestResolveExecutor:
    def test_defaults_to_serial(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor(1), SerialExecutor)

    def test_worker_counts(self):
        executor = resolve_executor(3)
        assert isinstance(executor, ThreadedExecutor)
        assert executor.workers == 3

    def test_threads_keyword(self):
        assert isinstance(resolve_executor("threads"), ThreadedExecutor)

    def test_processes_keyword(self):
        executor = resolve_executor("processes")
        assert isinstance(executor, ProcessExecutor)
        assert executor.workers >= 1
        sized = resolve_executor("processes", 3)
        assert isinstance(sized, ProcessExecutor)
        assert sized.workers == 3

    def test_legacy_workers_argument(self):
        assert isinstance(resolve_executor(None, 4), ThreadedExecutor)
        assert isinstance(resolve_executor(None, "processes"), ProcessExecutor)
        assert isinstance(resolve_executor(None, None), SerialExecutor)

    def test_instances_pass_through(self):
        executor = SerialExecutor()
        assert resolve_executor(executor) is executor
        sized = ThreadedExecutor(3)
        assert resolve_executor(sized, 3) is sized  # matching size is fine

    def test_rejects_conflicting_worker_counts(self):
        with pytest.raises(ValueError, match="cannot resize"):
            resolve_executor(ThreadedExecutor(3), 8)
        with pytest.raises(ValueError, match="conflicting"):
            resolve_executor(4, 8)

    def test_rejects_non_positive_worker_counts(self):
        for bad in (0, -1):
            with pytest.raises(ValueError, match=">= 1"):
                resolve_executor(bad)
            with pytest.raises(ValueError, match=">= 1"):
                resolve_executor("threads", bad)
            with pytest.raises(ValueError, match=">= 1"):
                resolve_executor("processes", bad)
        with pytest.raises(ValueError):
            resolve_executor("serial", 4)  # serial is single-threaded

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            resolve_executor("fork-bomb")
        with pytest.raises(TypeError):
            resolve_executor(2.5)
        with pytest.raises(TypeError):
            resolve_executor(True)

    def test_custom_executor_subclass(self):
        class Doubler(Executor):
            name = "doubler"

            def map(self, fn, items):
                return [fn(item) for item in items]

        assert resolve_executor(Doubler()).name == "doubler"


class TestExecuteBatchWithExecutor:
    def test_parallel_matches_serial(self, synthetic_collection, synthetic_queries):
        index = create_index("hintm_opt", synthetic_collection, num_bits=8)
        serial = execute_batch(index, synthetic_queries)
        with ThreadedExecutor(4) as executor:
            parallel = execute_batch(index, synthetic_queries, executor=executor)
        assert [sorted(ids) for ids in parallel.ids] == [
            sorted(ids) for ids in serial.ids
        ]
        assert parallel.counts == serial.counts

    def test_parallel_count_only(self, synthetic_collection, synthetic_queries):
        index = create_index("grid1d", synthetic_collection, num_partitions=64)
        serial = execute_batch(index, synthetic_queries, count_only=True)
        with ThreadedExecutor(3) as executor:
            parallel = execute_batch(
                index, synthetic_queries, count_only=True, executor=executor
            )
        assert parallel.ids is None
        assert parallel.counts == serial.counts
