"""Unit tests for the experiment drivers (repro.bench.experiments).

The drivers are exercised at a very small scale so the suite stays fast; the
benchmarks run the same code at measurement scale.
"""

import pytest

from repro.bench import experiments
from repro.core.interval import IntervalCollection
from repro.datasets.real_like import generate_books_like, generate_taxis_like


@pytest.fixture(scope="module")
def tiny_datasets():
    return {
        "BOOKS": generate_books_like(cardinality=400, seed=3),
        "TAXIS": generate_taxis_like(cardinality=400, seed=3),
    }


class TestDefaults:
    def test_default_real_like_datasets(self):
        datasets = experiments.default_real_like_datasets(cardinality=50)
        assert set(datasets) == {"BOOKS", "WEBKIT", "TAXIS", "GREEND"}
        assert all(len(c) == 50 for c in datasets.values())

    def test_competitor_configs_cover_paper_baselines(self):
        assert set(experiments.COMPETITOR_CONFIGS) == {
            "interval-tree",
            "period-index",
            "timeline",
            "1d-grid",
        }


class TestFigureDrivers:
    def test_fig10(self, tiny_datasets):
        result = experiments.fig10_evaluation_approaches(
            tiny_datasets, m_values=(4, 6), num_queries=10
        )
        assert set(result) == set(tiny_datasets)
        for series in result.values():
            assert series["m"] == [4, 6]
            assert len(series["top-down"]) == len(series["bottom-up"]) == 2
            assert all(v > 0 for v in series["top-down"] + series["bottom-up"])

    def test_fig11(self, tiny_datasets):
        result = experiments.fig11_subdivision_variants(
            tiny_datasets, m_values=(4, 6), num_queries=10
        )
        for metrics in result.values():
            assert metrics["m"] == [4, 6]
            for metric in ("size_mb", "build_s", "throughput"):
                assert set(metrics[metric]) == {
                    "base",
                    "subs+sort",
                    "subs+sopt",
                    "subs+sort+sopt",
                }
                assert all(len(v) == 2 for v in metrics[metric].values())

    def test_fig12(self, tiny_datasets):
        result = experiments.fig12_optimizations(
            tiny_datasets, m_values=(4, 6), num_queries=10
        )
        for metrics in result.values():
            assert set(metrics["throughput"]) == {
                "subs+sort+sopt",
                "skew&sparsity",
                "cache misses",
                "all optimizations",
            }

    def test_fig13(self, tiny_datasets):
        result = experiments.fig13_real_throughput(
            tiny_datasets, extents=(0.0, 0.01), num_queries=10
        )
        for series in result.values():
            assert series["extent"] == [0.0, 1.0]
            for name, values in series.items():
                if name == "extent":
                    continue
                assert len(values) == 2
                assert all(v > 0 for v in values)

    def test_fig14(self):
        sweep = experiments.SyntheticSweep("cardinality", (200, 400))
        result = experiments.fig14_synthetic_throughput(
            sweeps=(sweep,), num_queries=10, hint_m_bits=6
        )
        assert set(result) == {"cardinality"}
        series = result["cardinality"]
        assert series["value"] == [200, 400]
        assert "hint-m" in series and "interval-tree" in series


class TestTableDrivers:
    def test_table6(self, tiny_datasets):
        rows = experiments.table6_hint_sparsity(tiny_datasets, num_bits=10, num_queries=10)
        assert len(rows) == len(tiny_datasets)
        for name, qps_orig, qps_opt, mb_orig, mb_opt in rows:
            assert name in tiny_datasets
            assert qps_orig > 0 and qps_opt > 0
            assert mb_opt <= mb_orig

    def test_table7(self, tiny_datasets):
        rows = experiments.table7_parameter_setting(
            tiny_datasets, candidate_m=(4, 6), num_queries=10
        )
        assert {row["dataset"] for row in rows} == set(tiny_datasets)
        for row in rows:
            assert row["m_opt_measured"] in (4, 6)
            assert row["k_measured"] >= 1.0
            assert row["avg_compared_partitions"] >= 0.0

    def test_table8_and_table9(self, tiny_datasets):
        sizes = experiments.table8_index_sizes(tiny_datasets)
        times = experiments.table9_index_times(tiny_datasets)
        assert len(sizes) == len(times) == len(tiny_datasets)
        for _, per_index in sizes:
            assert {"interval-tree", "period-index", "timeline", "1d-grid", "hint", "hint-m"} == set(
                per_index
            )
            assert all(v > 0 for v in per_index.values())
        for _, per_index in times:
            assert all(v > 0 for v in per_index.values())

    def test_table10(self, tiny_datasets):
        result = experiments.table10_updates(
            tiny_datasets,
            num_queries=10,
            num_insertions=10,
            num_deletions=5,
            hint_m_bits=6,
        )
        for rows in result.values():
            names = {row["index"] for row in rows}
            assert "hybrid hint-m" in names and "interval-tree" in names
            assert all(row["total_seconds"] > 0 for row in rows)

    def test_table10_empty_dataset_guarded(self):
        result = experiments.table10_updates(
            {"EMPTY": IntervalCollection.from_pairs([(0, 5), (2, 8), (4, 9), (1, 3)] * 5)},
            num_queries=5,
            num_insertions=2,
            num_deletions=1,
            hint_m_bits=4,
        )
        assert "EMPTY" in result

    def test_process_scaling_smoke(self):
        result = experiments.process_scaling(
            cardinality=400, num_queries=20, backends=("naive",), repeats=1, workers=2
        )
        assert {r["executor"] for r in result["batch"]} == {
            "serial",
            "threads",
            "processes",
        }
        assert all(r["throughput"] > 0 for r in result["batch"])
        methods = {r["method"] for r in result["count"]}
        assert methods == {"materialise+dedup", "home-shard sums"}

    def test_process_scaling_degenerate_domain_skips_count_rows(self):
        # every interval at one point: the plan degenerates to a single
        # shard, no query spans >= 2 shards, and the count comparison must
        # be skipped rather than crash
        collection = IntervalCollection(
            ids=list(range(50)), starts=[5] * 50, ends=[5] * 50
        )
        result = experiments.process_scaling(
            collection, num_queries=10, backends=("naive",), repeats=1, workers=2
        )
        assert result["batch"]
        assert result["count"] == []
