"""Unit tests for the 1D-grid baseline (reference-value dedup included)."""

import pytest

from repro.baselines.grid1d import Grid1D
from repro.baselines.naive import NaiveIndex
from repro.core.interval import Interval, IntervalCollection, Query


class TestGridStructure:
    def test_invalid_partitions(self, tiny_collection):
        with pytest.raises(ValueError):
            Grid1D(tiny_collection, num_partitions=0)

    def test_replication_factor_grows_with_long_intervals(self):
        short = IntervalCollection.from_pairs([(i * 10, i * 10 + 1) for i in range(100)])
        long = IntervalCollection.from_pairs([(0, 999)] * 100)
        grid_short = Grid1D(short, num_partitions=50)
        grid_long = Grid1D(long, num_partitions=50)
        assert grid_long.replication_factor > grid_short.replication_factor
        assert grid_short.replication_factor >= 1.0

    def test_memory_grows_with_replication(self):
        base = IntervalCollection.from_pairs([(i, i + 1) for i in range(0, 1000, 10)])
        wide = IntervalCollection.from_pairs([(0, 999)] * 100)
        assert Grid1D(wide, num_partitions=100).memory_bytes() > Grid1D(
            base, num_partitions=100
        ).memory_bytes()

    def test_cell_bounds_partition_domain(self, synthetic_collection):
        grid = Grid1D(synthetic_collection, num_partitions=37)
        previous_end = None
        for cell in range(grid.num_partitions):
            lo, hi = grid.cell_bounds(cell)
            assert hi >= lo
            if previous_end is not None:
                assert lo == previous_end + 1
            previous_end = hi

    def test_empty_collection(self):
        grid = Grid1D(IntervalCollection.empty(), num_partitions=10)
        assert len(grid) == 0
        assert grid.query(Query(0, 5)) == []


class TestGridQueries:
    @pytest.mark.parametrize("num_partitions", [1, 3, 16, 200])
    def test_matches_naive_for_various_resolutions(
        self, synthetic_collection, synthetic_queries, num_partitions
    ):
        grid = Grid1D(synthetic_collection, num_partitions=num_partitions)
        naive = NaiveIndex.build(synthetic_collection)
        for q in synthetic_queries[:50]:
            assert sorted(grid.query(q)) == sorted(naive.query(q))

    def test_no_duplicates_from_replication(self):
        # every interval spans every cell: without the reference value each
        # would be reported once per overlapped cell
        data = IntervalCollection.from_pairs([(0, 999)] * 50)
        grid = Grid1D(data, num_partitions=10)
        results = grid.query(Query(100, 900))
        assert len(results) == len(set(results)) == 50

    def test_query_beyond_grid_boundaries(self, tiny_collection):
        grid = Grid1D(tiny_collection, num_partitions=4)
        naive = NaiveIndex.build(tiny_collection)
        assert sorted(grid.query(Query(-100, 100))) == sorted(naive.query(Query(-100, 100)))
        assert sorted(grid.query(Query(-5, 2))) == sorted(naive.query(Query(-5, 2)))

    def test_stats_track_boundary_comparisons(self, synthetic_collection):
        grid = Grid1D(synthetic_collection, num_partitions=64)
        lo, hi = synthetic_collection.span()
        _, stats = grid.query_with_stats(Query(lo + 10, lo + (hi - lo) // 4))
        assert stats.partitions_accessed >= 1
        assert stats.comparisons >= 0


class TestGridUpdates:
    def test_insert(self, tiny_collection):
        grid = Grid1D(tiny_collection, num_partitions=4)
        grid.insert(Interval(70, 2, 3))
        assert 70 in grid.query(Query(3, 3))

    def test_delete(self, tiny_collection):
        grid = Grid1D(tiny_collection, num_partitions=4)
        assert grid.delete(1) is True
        assert 1 not in grid.query(Query(0, 15))
        assert grid.delete(1) is False
        assert grid.delete(404) is False
