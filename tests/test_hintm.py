"""Unit tests for the base HINT^m (paper Section 3.2)."""

import pytest

from repro.baselines.naive import NaiveIndex
from repro.core.domain import Domain
from repro.core.errors import DomainError
from repro.core.interval import Interval, IntervalCollection, Query
from repro.hint.hintm import HINTm


class TestConstruction:
    def test_invalid_bits(self, synthetic_collection):
        with pytest.raises(DomainError):
            HINTm(synthetic_collection, num_bits=0)

    def test_invalid_strategy(self, synthetic_collection):
        with pytest.raises(ValueError):
            HINTm(synthetic_collection, num_bits=5, evaluation="sideways")

    def test_mismatched_domain(self, synthetic_collection):
        with pytest.raises(DomainError):
            HINTm(synthetic_collection, num_bits=5, domain=Domain.identity(8))

    def test_basic_properties(self, synthetic_collection):
        index = HINTm(synthetic_collection, num_bits=8)
        assert index.num_bits == 8
        assert index.num_levels == 9
        assert index.evaluation == "bottom_up"
        assert len(index) == len(synthetic_collection)

    def test_replication_factor_bounds(self, synthetic_collection):
        index = HINTm(synthetic_collection, num_bits=8)
        assert 1.0 <= index.replication_factor <= 2 * (index.num_bits + 1)

    def test_level_occupancy_sums_to_assignments(self, synthetic_collection):
        index = HINTm(synthetic_collection, num_bits=8)
        total = sum(index.level_occupancy())
        assert total == pytest.approx(index.replication_factor * len(index))

    def test_long_intervals_reach_high_levels(self, books_like_collection):
        index = HINTm(books_like_collection, num_bits=8)
        occupancy = index.level_occupancy()
        # BOOKS-like data has intervals spanning a large fraction of the
        # domain, so upper levels must hold data
        assert sum(occupancy[:5]) > 0

    def test_short_intervals_stay_at_bottom(self, taxis_like_collection):
        index = HINTm(taxis_like_collection, num_bits=8)
        occupancy = index.level_occupancy()
        assert occupancy[-1] > 0.8 * sum(occupancy)


class TestQueryCorrectness:
    @pytest.mark.parametrize("evaluation", ["bottom_up", "top_down"])
    @pytest.mark.parametrize("num_bits", [4, 8, 12])
    def test_matches_naive(
        self, synthetic_collection, synthetic_queries, evaluation, num_bits
    ):
        index = HINTm(synthetic_collection, num_bits=num_bits, evaluation=evaluation)
        naive = NaiveIndex.build(synthetic_collection)
        for q in synthetic_queries[:60]:
            assert sorted(index.query(q)) == sorted(naive.query(q)), (evaluation, num_bits, q)

    @pytest.mark.parametrize("evaluation", ["bottom_up", "top_down"])
    def test_books_like(self, books_like_collection, evaluation):
        index = HINTm(books_like_collection, num_bits=9, evaluation=evaluation)
        naive = NaiveIndex.build(books_like_collection)
        lo, hi = books_like_collection.span()
        span = hi - lo
        for fraction in (0.0, 0.001, 0.01, 0.1, 0.5):
            q = Query(lo + span // 3, lo + span // 3 + int(span * fraction))
            assert sorted(index.query(q)) == sorted(naive.query(q))

    def test_no_duplicates(self, synthetic_collection, synthetic_queries):
        index = HINTm(synthetic_collection, num_bits=8)
        for q in synthetic_queries[:40]:
            results = index.query(q)
            assert len(results) == len(set(results))

    def test_both_strategies_agree(self, synthetic_collection, synthetic_queries):
        bottom_up = HINTm(synthetic_collection, num_bits=9, evaluation="bottom_up")
        top_down = HINTm(synthetic_collection, num_bits=9, evaluation="top_down")
        for q in synthetic_queries[:60]:
            assert sorted(bottom_up.query(q)) == sorted(top_down.query(q))

    def test_query_outside_domain(self, synthetic_collection):
        index = HINTm(synthetic_collection, num_bits=8)
        lo, hi = synthetic_collection.span()
        assert index.query(Query(hi + 100, hi + 200)) == []
        assert index.query(Query(lo - 200, lo - 100)) == []

    def test_query_covering_everything(self, synthetic_collection):
        index = HINTm(synthetic_collection, num_bits=8)
        lo, hi = synthetic_collection.span()
        assert len(index.query(Query(lo, hi))) == len(synthetic_collection)


class TestLemma2Flags:
    def test_bottom_up_compares_fewer_partitions_than_top_down(
        self, books_like_collection
    ):
        """Lemma 2: the bottom-up evaluation prunes boundary comparisons."""
        bottom_up = HINTm(books_like_collection, num_bits=10, evaluation="bottom_up")
        top_down = HINTm(books_like_collection, num_bits=10, evaluation="top_down")
        lo, hi = books_like_collection.span()
        span = hi - lo
        total_bu = total_td = 0
        for i in range(25):
            q = Query(lo + i * span // 30, lo + i * span // 30 + span // 100)
            _, stats_bu = bottom_up.query_with_stats(q)
            _, stats_td = top_down.query_with_stats(q)
            total_bu += stats_bu.partitions_compared
            total_td += stats_td.partitions_compared
        assert total_bu <= total_td

    def test_expected_compared_partitions_close_to_lemma4(self, synthetic_collection):
        """Lemma 4: about four partitions require comparisons per query."""
        index = HINTm(synthetic_collection, num_bits=10)
        lo, hi = synthetic_collection.span()
        span = hi - lo
        compared = []
        for i in range(50):
            start = lo + (i * 131) % span
            q = Query(start, min(hi, start + span // 50))
            _, stats = index.query_with_stats(q)
            compared.append(stats.partitions_compared)
        assert sum(compared) / len(compared) <= 5.0


class TestUpdates:
    def test_insert(self, synthetic_collection):
        index = HINTm(synthetic_collection, num_bits=8)
        lo, hi = synthetic_collection.span()
        index.insert(Interval(999_999, lo + 5, lo + 50))
        assert 999_999 in index.query(Query(lo + 10, lo + 20))

    def test_delete(self, synthetic_collection):
        index = HINTm(synthetic_collection, num_bits=8)
        victim = int(synthetic_collection.ids[10])
        assert index.delete(victim) is True
        lo, hi = synthetic_collection.span()
        assert victim not in index.query(Query(lo, hi))
        assert index.delete(victim) is False

    def test_insert_outside_initial_span_is_clamped_but_correct(
        self, synthetic_collection
    ):
        index = HINTm(synthetic_collection, num_bits=8)
        naive = NaiveIndex.build(synthetic_collection)
        lo, hi = synthetic_collection.span()
        outlier = Interval(777_777, hi + 1000, hi + 2000)
        index.insert(outlier)
        naive.insert(outlier)
        assert sorted(index.query(Query(hi + 1500, hi + 1600))) == sorted(
            naive.query(Query(hi + 1500, hi + 1600))
        )
        assert sorted(index.query(Query(lo, hi))) == sorted(naive.query(Query(lo, hi)))
