"""Acceptance benchmark for the maintenance subsystem.

The PR's bar, on a 150k-interval TAXIS-scale collection with a 2k-op
interleaved insert/delete stream per repeat:

* the buffered ingest journal reaches >= 5x the insert/delete throughput of
  the eager ``np.insert`` count-column path on the same K=4 sharded hybrid
  (journaling is O(1) per op; the eager path reallocates O(shard size)
  sorted columns on every update);
* multi-shard ``query_count`` answers are identical to the brute-force
  oracle over the live set both before and after ``maintain()`` (asserted
  inside the driver, surfaced here via the ``counts_exact`` flags);
* after ``maintain()`` + snapshot refresh, process-executor batches fan out
  again -- asserted via the residency-token generation, not timing.
"""

import pytest

from repro.bench.experiments import ingest_maintenance
from repro.core.interval import HAS_SHARED_MEMORY

CARDINALITY = 150_000
NUM_UPDATES = 2_000


@pytest.fixture(scope="module")
def result():
    return ingest_maintenance(
        cardinality=CARDINALITY, num_updates=NUM_UPDATES, repeats=3
    )


def test_journal_beats_eager_ingest_5x(result):
    by_mode = {r["mode"]: r for r in result["ingest"]}
    eager, journal = by_mode["eager"], by_mode["journal"]
    ratio = journal["ops_per_s"] / eager["ops_per_s"]
    assert ratio >= 5.0, (
        f"buffered ingest reached only {ratio:.2f}x over the eager np.insert "
        f"path on the K={journal['num_shards']} sharded hybrid "
        f"({journal['ops_per_s']:,.0f} vs {eager['ops_per_s']:,.0f} ops/s)"
    )


def test_counts_identical_to_oracle_before_and_after_maintain(result):
    # the driver raises if any multi-shard count diverges from the live-set
    # brute force, both before and after the forced maintain() pass
    assert result["ingest"], "no ingest measurements"
    assert all(r["counts_exact"] for r in result["ingest"])
    assert all(r["maintain_ms"] >= 0 for r in result["ingest"])


@pytest.mark.skipif(not HAS_SHARED_MEMORY, reason="no multiprocessing.shared_memory")
def test_process_fanout_restored_after_maintain(result):
    stages = {r["stage"]: r for r in result["refresh"]}
    assert stages["published"]["fanout_ready"]
    assert not stages["after updates"]["fanout_ready"]
    assert stages["after updates"]["update_dirty"]
    restored = stages["after maintain"]
    assert restored["fanout_ready"]
    assert not restored["update_dirty"]
    assert restored["generation"] > stages["published"]["generation"]
