"""Integration tests: every index returns identical result sets.

This is the reproduction's core correctness claim: HINT, HINT^m (all
variants) and the four baselines are interchangeable with respect to range
and stabbing query results, across datasets with very different interval
length distributions (the paper's Table 4 contrast).
"""

import pytest

from repro.baselines import Grid1D, IntervalTree, NaiveIndex, PeriodIndex, TimelineIndex
from repro.core.interval import Query
from repro.hint import HINTm, HybridHINTm, OptimizedHINTm, SubdividedHINTm
from repro.queries.generator import QueryWorkloadConfig, generate_queries

INDEX_FACTORIES = {
    "interval-tree": lambda data: IntervalTree.build(data),
    "1d-grid": lambda data: Grid1D.build(data, num_partitions=128),
    "timeline": lambda data: TimelineIndex.build(data, num_checkpoints=64),
    "period-index": lambda data: PeriodIndex.build(data, num_coarse_partitions=16, num_levels=4),
    "hint-m": lambda data: HINTm.build(data, num_bits=9),
    "hint-m-top-down": lambda data: HINTm.build(data, num_bits=9, evaluation="top_down"),
    "hint-m-subs": lambda data: SubdividedHINTm.build(data, num_bits=9),
    "hint-m-opt": lambda data: OptimizedHINTm.build(data, num_bits=9),
    "hint-m-hybrid": lambda data: HybridHINTm.build(data, num_bits=9),
}

DATASET_FIXTURES = ["synthetic_collection", "books_like_collection", "taxis_like_collection"]


@pytest.fixture(scope="module")
def built_indexes(request):
    cache = {}

    def _get(fixture_name, factory_name):
        key = (fixture_name, factory_name)
        if key not in cache:
            data = request.getfixturevalue(fixture_name)
            cache[key] = INDEX_FACTORIES[factory_name](data)
        return cache[key]

    return _get


@pytest.mark.parametrize("dataset_fixture", DATASET_FIXTURES)
@pytest.mark.parametrize("index_name", sorted(INDEX_FACTORIES))
def test_range_queries_match_oracle(request, built_indexes, dataset_fixture, index_name):
    data = request.getfixturevalue(dataset_fixture)
    index = built_indexes(dataset_fixture, index_name)
    oracle = NaiveIndex.build(data)
    queries = generate_queries(
        data, QueryWorkloadConfig(count=25, extent_fraction=0.005, placement="data", seed=71)
    )
    for q in queries:
        assert sorted(index.query(q)) == sorted(oracle.query(q)), (index_name, q)


@pytest.mark.parametrize("dataset_fixture", DATASET_FIXTURES)
@pytest.mark.parametrize("index_name", sorted(INDEX_FACTORIES))
def test_stabbing_queries_match_oracle(request, built_indexes, dataset_fixture, index_name):
    data = request.getfixturevalue(dataset_fixture)
    index = built_indexes(dataset_fixture, index_name)
    oracle = NaiveIndex.build(data)
    queries = generate_queries(
        data, QueryWorkloadConfig(count=20, extent_fraction=0.0, seed=73)
    )
    for q in queries:
        assert sorted(index.query(q)) == sorted(oracle.query(q)), (index_name, q)


@pytest.mark.parametrize("dataset_fixture", DATASET_FIXTURES)
@pytest.mark.parametrize("index_name", sorted(INDEX_FACTORIES))
def test_wide_queries_match_oracle(request, built_indexes, dataset_fixture, index_name):
    """Queries spanning 20% of the domain exercise the comparison-free middle partitions."""
    data = request.getfixturevalue(dataset_fixture)
    index = built_indexes(dataset_fixture, index_name)
    oracle = NaiveIndex.build(data)
    queries = generate_queries(
        data, QueryWorkloadConfig(count=8, extent_fraction=0.2, seed=79)
    )
    for q in queries:
        assert sorted(index.query(q)) == sorted(oracle.query(q)), (index_name, q)


@pytest.mark.parametrize("index_name", sorted(INDEX_FACTORIES))
def test_full_domain_query_returns_everything(request, built_indexes, index_name):
    data = request.getfixturevalue("synthetic_collection")
    index = built_indexes("synthetic_collection", index_name)
    lo, hi = data.span()
    assert sorted(index.query(Query(lo, hi))) == sorted(data.ids.tolist())


@pytest.mark.parametrize("index_name", sorted(INDEX_FACTORIES))
def test_disjoint_query_returns_nothing(request, built_indexes, index_name):
    data = request.getfixturevalue("synthetic_collection")
    index = built_indexes("synthetic_collection", index_name)
    _, hi = data.span()
    assert index.query(Query(hi + 10_000, hi + 20_000)) == []
