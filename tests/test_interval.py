"""Unit tests for the interval data model (repro.core.interval)."""

import numpy as np
import pytest

from repro.core.errors import EmptyCollectionError, InvalidIntervalError, InvalidQueryError
from repro.core.interval import (
    Interval,
    IntervalCollection,
    Query,
    interval_contains,
    interval_contains_point,
    intervals_overlap,
)


class TestInterval:
    def test_basic_fields(self):
        s = Interval(7, 3, 9)
        assert s.id == 7
        assert s.start == 3
        assert s.end == 9

    def test_duration(self):
        assert Interval(0, 3, 9).duration == 6
        assert Interval(0, 4, 4).duration == 0

    def test_invalid_interval_raises(self):
        with pytest.raises(InvalidIntervalError):
            Interval(0, 5, 4)

    def test_point_interval_allowed(self):
        assert Interval(0, 5, 5).duration == 0

    def test_overlaps_symmetric_cases(self):
        a = Interval(0, 2, 6)
        assert a.overlaps(Interval(1, 6, 9))      # touching at the end
        assert a.overlaps(Interval(1, 0, 2))      # touching at the start
        assert a.overlaps(Interval(1, 3, 4))      # contained
        assert a.overlaps(Interval(1, 0, 10))     # containing
        assert not a.overlaps(Interval(1, 7, 9))
        assert not a.overlaps(Interval(1, 0, 1))

    def test_contains(self):
        outer = Interval(0, 2, 10)
        assert outer.contains(Interval(1, 2, 10))
        assert outer.contains(Interval(1, 4, 6))
        assert not outer.contains(Interval(1, 1, 5))
        assert not outer.contains(Interval(1, 5, 11))

    def test_contains_point(self):
        s = Interval(0, 2, 4)
        assert s.contains_point(2)
        assert s.contains_point(4)
        assert not s.contains_point(5)
        assert not s.contains_point(1)

    def test_as_tuple(self):
        assert Interval(3, 1, 2).as_tuple() == (3, 1, 2)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Interval(0, 1, 2).start = 5  # type: ignore[misc]


class TestQuery:
    def test_stabbing_constructor(self):
        q = Query.stabbing(42)
        assert q.start == q.end == 42
        assert q.is_stabbing
        assert q.extent == 0

    def test_invalid_query(self):
        with pytest.raises(InvalidQueryError):
            Query(5, 4)

    def test_extent(self):
        assert Query(2, 10).extent == 8

    def test_overlaps_interval(self):
        q = Query(5, 10)
        assert q.overlaps(Interval(0, 10, 12))
        assert q.overlaps(Interval(0, 1, 5))
        assert not q.overlaps(Interval(0, 11, 12))
        assert not q.overlaps(Interval(0, 1, 4))


class TestRawPredicates:
    def test_intervals_overlap(self):
        assert intervals_overlap(1, 5, 5, 9)
        assert intervals_overlap(5, 9, 1, 5)
        assert not intervals_overlap(1, 4, 5, 9)

    def test_interval_contains(self):
        assert interval_contains(0, 10, 3, 7)
        assert not interval_contains(3, 7, 0, 10)

    def test_interval_contains_point(self):
        assert interval_contains_point(3, 7, 3)
        assert interval_contains_point(3, 7, 7)
        assert not interval_contains_point(3, 7, 8)


class TestIntervalCollection:
    def test_from_intervals_roundtrip(self, tiny_collection):
        materialised = list(tiny_collection)
        rebuilt = IntervalCollection.from_intervals(materialised)
        assert list(rebuilt.ids) == list(tiny_collection.ids)
        assert list(rebuilt.starts) == list(tiny_collection.starts)
        assert list(rebuilt.ends) == list(tiny_collection.ends)

    def test_from_pairs_assigns_sequential_ids(self):
        collection = IntervalCollection.from_pairs([(1, 2), (5, 9)], first_id=10)
        assert list(collection.ids) == [10, 11]
        assert collection[1] == Interval(11, 5, 9)

    def test_length_mismatch_raises(self):
        with pytest.raises(InvalidIntervalError):
            IntervalCollection(ids=[1], starts=[1, 2], ends=[3, 4])

    def test_end_before_start_raises(self):
        with pytest.raises(InvalidIntervalError):
            IntervalCollection(ids=[0], starts=[5], ends=[4])

    def test_empty(self):
        empty = IntervalCollection.empty()
        assert len(empty) == 0
        assert empty.mean_duration() == 0.0
        with pytest.raises(EmptyCollectionError):
            empty.span()

    def test_span_and_domain_length(self, tiny_collection):
        assert tiny_collection.span() == (0, 15)
        assert tiny_collection.domain_length() == 15

    def test_duration_statistics(self, tiny_collection):
        durations = tiny_collection.durations()
        assert durations.min() == tiny_collection.min_duration() == 0
        assert durations.max() == tiny_collection.max_duration() == 15
        assert tiny_collection.mean_duration() == pytest.approx(float(np.mean(durations)))

    def test_getitem_and_iter(self, tiny_collection):
        assert tiny_collection[0] == Interval(0, 5, 9)
        assert len(list(tiny_collection)) == len(tiny_collection)

    def test_extend(self, tiny_collection):
        other = IntervalCollection.from_pairs([(100, 200)], first_id=50)
        merged = tiny_collection.extend(other)
        assert len(merged) == len(tiny_collection) + 1
        assert merged[len(tiny_collection)] == Interval(50, 100, 200)

    def test_subset(self, tiny_collection):
        subset = tiny_collection.subset([0, 2])
        assert len(subset) == 2
        assert subset[1] == Interval(2, 3, 3)

    def test_shuffled_preserves_multiset(self, tiny_collection):
        shuffled = tiny_collection.shuffled(seed=1)
        assert sorted(shuffled.ids.tolist()) == sorted(tiny_collection.ids.tolist())
        assert len(shuffled) == len(tiny_collection)

    def test_query_ids_matches_manual_scan(self, tiny_collection):
        q = Query(4, 9)
        expected = sorted(s.id for s in tiny_collection if s.overlaps(q))
        assert sorted(tiny_collection.query_ids(q).tolist()) == expected

    def test_query_ids_empty_result(self, tiny_collection):
        assert tiny_collection.query_ids(Query(100, 200)).size == 0
