"""Unit tests for the Edelsbrunner interval tree baseline."""

import pytest

from repro.baselines.interval_tree import IntervalTree
from repro.baselines.naive import NaiveIndex
from repro.core.interval import Interval, IntervalCollection, Query
from repro.queries.generator import QueryWorkloadConfig, generate_queries


class TestIntervalTreeStructure:
    def test_len(self, synthetic_collection):
        tree = IntervalTree.build(synthetic_collection)
        assert len(tree) == len(synthetic_collection)

    def test_node_count_linear_in_size(self, synthetic_collection):
        # intermediate nodes on a root-to-storage path may be empty, so the
        # node count can slightly exceed n, but it stays linear
        tree = IntervalTree.build(synthetic_collection)
        assert 1 <= tree.node_count() <= 2 * len(synthetic_collection) + 1

    def test_height_is_logarithmic(self, synthetic_collection):
        tree = IntervalTree.build(synthetic_collection)
        lo, hi = synthetic_collection.span()
        # height bounded by the bits of the domain (the split is by centre)
        assert tree.height() <= (hi - lo).bit_length() + 2

    def test_memory_bytes_positive(self, tiny_collection):
        assert IntervalTree.build(tiny_collection).memory_bytes() > 0

    def test_empty_collection(self):
        tree = IntervalTree.build(IntervalCollection.empty())
        assert len(tree) == 0
        assert tree.query(Query(0, 100)) == []


class TestIntervalTreeQueries:
    def test_matches_naive_on_workload(self, synthetic_collection, synthetic_queries):
        tree = IntervalTree.build(synthetic_collection)
        naive = NaiveIndex.build(synthetic_collection)
        for q in synthetic_queries[:80]:
            assert sorted(tree.query(q)) == sorted(naive.query(q))

    def test_stabbing_query(self, tiny_collection):
        tree = IntervalTree.build(tiny_collection)
        naive = NaiveIndex.build(tiny_collection)
        for point in range(0, 16):
            assert sorted(tree.stab(point)) == sorted(naive.stab(point))

    def test_no_duplicates(self, synthetic_collection, synthetic_queries):
        tree = IntervalTree.build(synthetic_collection)
        for q in synthetic_queries[:40]:
            results = tree.query(q)
            assert len(results) == len(set(results))

    def test_stats_counts_comparisons(self, synthetic_collection):
        tree = IntervalTree.build(synthetic_collection)
        lo, hi = synthetic_collection.span()
        _, stats = tree.query_with_stats(Query(lo, (lo + hi) // 2))
        assert stats.partitions_accessed >= 1
        assert stats.results >= 0


class TestIntervalTreeUpdates:
    def test_insert_then_query(self, tiny_collection):
        tree = IntervalTree.build(tiny_collection)
        tree.insert(Interval(50, 6, 7))
        assert 50 in tree.query(Query(7, 7))
        assert len(tree) == len(tiny_collection) + 1

    def test_insert_outside_root_span_uses_overflow(self, tiny_collection):
        tree = IntervalTree.build(tiny_collection)
        tree.insert(Interval(60, 1000, 1500))
        assert 60 in tree.query(Query(1200, 1300))
        assert 60 not in tree.query(Query(0, 100))

    def test_delete_existing(self, tiny_collection):
        tree = IntervalTree.build(tiny_collection)
        assert tree.delete(0) is True
        assert 0 not in tree.query(Query(5, 9))
        assert tree.delete(0) is False

    def test_delete_missing(self, tiny_collection):
        tree = IntervalTree.build(tiny_collection)
        assert tree.delete(999) is False

    def test_delete_overflow_interval(self, tiny_collection):
        tree = IntervalTree.build(tiny_collection)
        tree.insert(Interval(61, 2000, 2100))
        assert tree.delete(61) is True
        assert tree.query(Query(2000, 2100)) == []

    def test_mixed_updates_match_naive(self, synthetic_collection):
        tree = IntervalTree.build(synthetic_collection)
        naive = NaiveIndex.build(synthetic_collection)
        new = [Interval(1_000_000 + i, 100 * i, 100 * i + 500) for i in range(30)]
        for interval in new:
            tree.insert(interval)
            naive.insert(interval)
        for sid in list(synthetic_collection.ids[:20]):
            assert tree.delete(int(sid)) == naive.delete(int(sid))
        queries = generate_queries(
            synthetic_collection, QueryWorkloadConfig(count=30, extent_fraction=0.05, seed=9)
        )
        for q in queries:
            assert sorted(tree.query(q)) == sorted(naive.query(q))
