"""Unit tests for CSV interval I/O (repro.datasets.io)."""

import pytest

from repro.core.errors import InvalidIntervalError
from repro.datasets.io import load_intervals_csv, save_intervals_csv


class TestCsvRoundtrip:
    def test_save_and_load(self, tmp_path, tiny_collection):
        path = tmp_path / "intervals.csv"
        save_intervals_csv(tiny_collection, path)
        loaded = load_intervals_csv(path)
        assert list(loaded.ids) == list(tiny_collection.ids)
        assert list(loaded.starts) == list(tiny_collection.starts)
        assert list(loaded.ends) == list(tiny_collection.ends)

    def test_two_column_format(self, tmp_path):
        path = tmp_path / "pairs.csv"
        path.write_text("10,20\n30,40\n")
        loaded = load_intervals_csv(path)
        assert list(loaded.ids) == [0, 1]
        assert list(loaded.starts) == [10, 30]

    def test_header_skipped(self, tmp_path):
        path = tmp_path / "with_header.csv"
        path.write_text("id,start,end\n5,1,2\n")
        loaded = load_intervals_csv(path, has_header=True)
        assert list(loaded.ids) == [5]

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "blanks.csv"
        path.write_text("1,2,3\n\n4,5,6\n")
        assert len(load_intervals_csv(path)) == 2

    def test_malformed_row_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,notanumber,3\n")
        with pytest.raises(InvalidIntervalError):
            load_intervals_csv(path)

    def test_single_column_raises(self, tmp_path):
        path = tmp_path / "bad2.csv"
        path.write_text("42\n")
        with pytest.raises(InvalidIntervalError):
            load_intervals_csv(path)

    def test_save_creates_parent_directories(self, tmp_path, tiny_collection):
        path = tmp_path / "nested" / "dir" / "intervals.csv"
        save_intervals_csv(tiny_collection, path)
        assert path.exists()
