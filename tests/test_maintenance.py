"""The maintenance subsystem: ingest journal, policies, coordinator, adaptive K.

Covers the four pieces of :mod:`repro.engine.maintenance` -- the buffered
count-column journal (lazy folds on multi-shard counts), the pluggable
rebuild policies, the coordinator's maintain pass (folds, hybrid rebuilds,
skew-triggered re-partitioning, background thread) and the Section 3.3 cost
model extended to pick the shard count -- plus the locator-atomicity
regression for deletes of duplicated ids.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.interval import Interval, IntervalCollection, Query
from repro.engine import IntervalStore, ShardedIndex, ShardedStore
from repro.engine.maintenance import (
    CostModelRebuildPolicy,
    CountColumns,
    IngestJournal,
    MaintenanceConfig,
    MaintenanceCoordinator,
    MaintenanceReport,
    RebuildPolicy,
    ShardHealth,
    ThresholdRebuildPolicy,
    recommend_shard_count,
    resolve_policy,
)
from repro.engine.sharding import ShardPlan, partition_collection


def _random_updates(collection, rng, count=300, extra_length=2000):
    """Alternating inserts (fresh ids) and deletes (existing ids)."""
    lo, hi = collection.span()
    next_id = int(collection.ids.max()) + 1
    victims = rng.choice(collection.ids, size=count // 2, replace=False)
    stream = []
    for i in range(count):
        if i % 2 == 0:
            start = int(rng.integers(lo, hi))
            stream.append(
                ("insert", Interval(next_id, start, start + int(rng.integers(0, extra_length))))
            )
            next_id += 1
        else:
            stream.append(("delete", int(victims[i // 2])))
    return stream


def _apply(index, stream):
    live_delta = {}
    for kind, payload in stream:
        if kind == "insert":
            index.insert(payload)
            live_delta[payload.id] = (payload.start, payload.end)
        else:
            assert index.delete(payload)
            live_delta[payload] = None
    return live_delta


class TestCountColumns:
    def test_fold_matches_recomputed_sort(self, rng):
        pairs = [(int(v), int(v) + int(rng.integers(0, 50))) for v in rng.integers(0, 10_000, 200)]
        column = CountColumns([s for s, _ in pairs], [e for _, e in pairs])
        for _ in range(150):
            if rng.random() < 0.6 or not pairs:
                start = int(rng.integers(0, 10_000))
                end = start + int(rng.integers(0, 50))
                column.record_insert(start, end)
                pairs.append((start, end))
            else:
                start, end = pairs.pop(int(rng.integers(0, len(pairs))))
                column.record_delete(start, end)
        column.fold()
        assert column.pending_ops == 0
        assert column.starts.tolist() == sorted(s for s, _ in pairs)
        assert column.ends.tolist() == sorted(e for _, e in pairs)
        assert column.live_size == len(pairs)

    def test_fold_exact_under_duplicates_and_cancellation(self):
        column = CountColumns([1, 5, 5, 9], [2, 6, 6, 10])
        column.record_insert(5, 6)       # duplicate of an existing value
        column.record_insert(3, 4)
        column.record_insert(3, 4)       # duplicate among the pending adds
        column.record_delete(5, 6)       # cancels one of the three 5s
        column.record_delete(3, 4)       # cancels a value added this batch
        assert column.pending_ops == 5
        column.fold()
        assert column.pending_ops == 0
        assert column.starts.tolist() == [1, 3, 5, 5, 9]
        assert column.ends.tolist() == [2, 4, 6, 6, 10]

    def test_counts_fold_lazily(self):
        column = CountColumns([1, 4, 8], [2, 6, 9])
        column.record_insert(5, 7)
        assert column.pending_ops == 1
        # the counting accessor folds first, then bisects
        assert column.count_ends_ge(6) == 3
        assert column.pending_ops == 0
        assert column.count_starts_in(4, 5) == 2

    def test_eager_mode_matches_journal_mode(self, rng):
        values = rng.integers(0, 1_000, size=50)
        eager = CountColumns(values, values + 2, eager=True)
        journal = CountColumns(values, values + 2)
        for _ in range(40):
            start = int(rng.integers(0, 1_000))
            eager.record_insert(start, start + 1)
            journal.record_insert(start, start + 1)
        journal.fold()
        assert eager.starts.tolist() == journal.starts.tolist()
        assert eager.ends.tolist() == journal.ends.tolist()
        assert eager.pending_ops == 0  # eager never buffers

    def test_fold_threshold_bounds_buffers(self):
        collection = IntervalCollection.from_pairs([(0, 10), (20, 30), (40, 50)])
        journal = IngestJournal([collection], fold_threshold=4)
        for i in range(10):
            journal.record_insert(0, 0, i, i + 1)
        assert max(journal.pending_depths()) < 4


class TestShardedJournal:
    def test_multi_shard_counts_exact_without_maintain(self, synthetic_collection, rng):
        """The acceptance property: counts fold pending updates lazily."""
        index = ShardedIndex(synthetic_collection, backend="hintm_hybrid",
                             num_shards=4, num_bits=7)
        live = {
            int(i): (int(s), int(e))
            for i, s, e in zip(synthetic_collection.ids,
                               synthetic_collection.starts,
                               synthetic_collection.ends)
        }
        for kind, payload in _random_updates(synthetic_collection, rng):
            if kind == "insert":
                index.insert(payload)
                live[payload.id] = (payload.start, payload.end)
            else:
                assert index.delete(payload)
                del live[payload]
        assert sum(index.ingest_journal.pending_depths()) > 0
        starts = np.array([s for s, _ in live.values()])
        ends = np.array([e for _, e in live.values()])
        lo, hi = synthetic_collection.span()
        checked_multi = 0
        for _ in range(30):
            a = int(rng.integers(lo, hi))
            b = a + int(rng.integers(0, hi - lo))
            first, last = index.plan.shard_range(a, b)
            checked_multi += first < last
            assert index.query_count(Query(a, b)) == int(np.sum((starts <= b) & (a <= ends)))
        assert checked_multi > 0
        # the first multi-shard count folded every probed shard's buffer
        assert sum(index.ingest_journal.pending_depths()) == 0

    def test_journal_and_eager_indexes_answer_identically(self, synthetic_collection, rng):
        journal = ShardedIndex(synthetic_collection, backend="hintm_hybrid",
                               num_shards=4, num_bits=7)
        eager = ShardedIndex(synthetic_collection, backend="hintm_hybrid",
                             num_shards=4, num_bits=7, ingest="eager")
        stream = _random_updates(synthetic_collection, rng)
        for kind, payload in stream:
            for index in (journal, eager):
                if kind == "insert":
                    index.insert(payload)
                else:
                    index.delete(payload)
        lo, hi = synthetic_collection.span()
        for _ in range(25):
            a = int(rng.integers(lo, hi))
            b = a + int(rng.integers(0, (hi - lo) // 2))
            query = Query(a, b)
            assert journal.query_count(query) == eager.query_count(query)
            assert sorted(journal.query(query)) == sorted(eager.query(query))

    def test_concurrent_folds_and_records_lose_nothing(self):
        """Counting folds race recording updates across threads; the journal
        lock must neither drop nor double-apply a journaled operation."""
        import threading

        collection = IntervalCollection.from_pairs(
            [(i * 10, i * 10 + 5) for i in range(100)]
        )
        column = CountColumns(collection.starts, collection.ends)
        inserts_per_thread = 500
        writers = 3

        def write(offset):
            for i in range(inserts_per_thread):
                column.record_insert(offset + i, offset + i + 1)

        def count_hammer(stop):
            while not stop.is_set():
                column.count_ends_ge(0)  # folds under the lock

        stop = threading.Event()
        counter = threading.Thread(target=count_hammer, args=(stop,))
        counter.start()
        threads = [
            threading.Thread(target=write, args=(1_000_000 * (t + 1),))
            for t in range(writers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        counter.join()
        column.fold()
        expected = len(collection) + writers * inserts_per_thread
        assert len(column.starts) == expected
        assert len(column.ends) == expected
        assert column.starts.tolist() == sorted(column.starts.tolist())

    def test_invalid_ingest_mode_rejected(self, tiny_collection):
        with pytest.raises(ValueError, match="ingest mode"):
            ShardedIndex(tiny_collection, backend="naive", num_shards=2, ingest="nope")

    def test_fold_threshold_wired_through_index(self, synthetic_collection, rng):
        """Without multi-shard counts, the threshold alone bounds the buffers."""
        index = ShardedIndex(synthetic_collection, backend="hintm_hybrid",
                             num_shards=4, num_bits=7, fold_threshold=16)
        for kind, payload in _random_updates(synthetic_collection, rng, count=400):
            if kind == "insert":
                index.insert(payload)
            else:
                assert index.delete(payload)
        assert max(index.ingest_journal.pending_depths()) < 16
        # the threshold also survives a repartition's journal rebuild
        assert index.repartition(strategy="balanced")
        lo, _ = synthetic_collection.span()
        for i in range(40):
            index.insert(Interval(2 * 10**6 + i, lo + i, lo + i + 1))
        assert max(index.ingest_journal.pending_depths()) < 16

    def test_memory_bytes_includes_journal(self, synthetic_collection):
        index = ShardedIndex(synthetic_collection, backend="hintm_opt",
                             num_shards=4, num_bits=7)
        assert index.memory_bytes() >= index.ingest_journal.nbytes > 0


class TestDeleteAtomicity:
    """Satellite regression: locator mutation is atomic with per-shard deletes."""

    def _duplicated_interval(self, index):
        for interval_id, span in index._locator.items():
            first, last = index.plan.shard_range(*span)
            if first < last:
                return interval_id, span
        raise AssertionError("no boundary-spanning interval in the fixture")

    def test_failed_shard_delete_leaves_bookkeeping_consistent(
        self, synthetic_collection, monkeypatch
    ):
        index = ShardedIndex(synthetic_collection, backend="hintm_hybrid",
                             num_shards=4, num_bits=7)
        interval_id, span = self._duplicated_interval(index)
        first, last = index.plan.shard_range(*span)
        probe = Query(*span)
        count_before = index.query_count(probe)

        failing_shard = index.shards[last]
        original_delete = type(failing_shard).delete

        def exploding_delete(self, victim_id):
            if self is failing_shard and victim_id == interval_id:
                raise RuntimeError("injected shard failure")
            return original_delete(self, victim_id)

        monkeypatch.setattr(type(failing_shard), "delete", exploding_delete)
        with pytest.raises(RuntimeError, match="injected"):
            index.delete(interval_id)
        # the locator and the count columns were not touched: the id is
        # still addressable and multi-shard counts still include it
        assert interval_id in index._locator
        assert index.query_count(probe) == count_before
        monkeypatch.undo()

        # the retry completes: every copy tombstoned, bookkeeping updated
        assert index.delete(interval_id)
        assert interval_id not in index._locator
        assert index.query_count(probe) == count_before - 1
        assert interval_id not in index.query(probe)

    def test_duplicated_delete_updates_every_owning_shard(self, synthetic_collection):
        index = ShardedIndex(synthetic_collection, backend="hintm_hybrid",
                             num_shards=4, num_bits=7)
        interval_id, span = self._duplicated_interval(index)
        first, last = index.plan.shard_range(*span)
        assert index.delete(interval_id)
        for shard in range(first, last + 1):
            assert interval_id not in index.shards[shard].query(Query(*span))
        assert not index.delete(interval_id)  # no copy left anywhere


class TestPolicies:
    def test_threshold_policy(self):
        policy = ThresholdRebuildPolicy(fraction=0.1, min_delta=10)
        assert not policy.should_rebuild(ShardHealth(0, live=1000, delta=5))
        assert not policy.should_rebuild(ShardHealth(0, live=1000, delta=99))
        assert policy.should_rebuild(ShardHealth(0, live=1000, delta=100))
        assert policy.should_rebuild(ShardHealth(0, live=0, delta=10))

    def test_cost_model_policy_amortises(self):
        policy = CostModelRebuildPolicy(
            beta_cmp=1e-6, build_cost_per_interval=1e-4, min_delta=10
        )
        quiet = ShardHealth(0, live=10_000, delta=50, queries_since_maintain=3)
        busy = ShardHealth(0, live=10_000, delta=50, queries_since_maintain=100_000)
        assert not policy.should_rebuild(quiet)
        assert policy.should_rebuild(busy)
        # below min_delta nothing rebuilds, no matter the query pressure
        tiny = ShardHealth(0, live=10_000, delta=5, queries_since_maintain=10**9)
        assert not policy.should_rebuild(tiny)

    def test_resolve_policy(self):
        assert isinstance(resolve_policy(None), ThresholdRebuildPolicy)
        assert isinstance(resolve_policy("cost_model"), CostModelRebuildPolicy)
        assert isinstance(resolve_policy("cost-model"), CostModelRebuildPolicy)
        custom = ThresholdRebuildPolicy(fraction=0.5)
        assert resolve_policy(custom) is custom
        assert resolve_policy("threshold", fraction=0.25).fraction == 0.25
        with pytest.raises(ValueError, match="unknown rebuild policy"):
            resolve_policy("bogus")
        with pytest.raises(ValueError, match="cannot reconfigure"):
            resolve_policy(custom, fraction=0.1)
        with pytest.raises(TypeError):
            resolve_policy(42)


class TestCoordinator:
    def test_maintain_folds_and_rebuilds_hybrid_shards(self, synthetic_collection, rng):
        index = ShardedIndex(synthetic_collection, backend="hintm_hybrid",
                             num_shards=4, num_bits=7)
        # repartition off: this test isolates the per-shard rebuild path (a
        # repartition would preempt it, since fresh builds fold the deltas)
        coordinator = MaintenanceCoordinator(
            index,
            config=MaintenanceConfig(repartition=False),
            policy=ThresholdRebuildPolicy(fraction=0.001, min_delta=1),
        )
        _apply(index, _random_updates(synthetic_collection, rng, count=100))
        pending = sum(index.ingest_journal.pending_depths())
        assert pending > 0
        deltas_before = [s.delta_size for s in index.shards]
        assert any(deltas_before)
        report = coordinator.maintain()
        assert report.folded_ops == pending
        assert report.rebuilt_shards  # the aggressive threshold fired
        for shard_id in report.rebuilt_shards:
            assert index.shards[shard_id].delta_size == 0
        assert coordinator.reports[-1] is report
        state = coordinator.state()
        assert state["pending_per_shard"] == [0, 0, 0, 0]
        assert set(report.rebuilt_shards) <= set(state["last_rebuild"])

    def test_force_rebuilds_only_nonempty_deltas(self, synthetic_collection):
        index = ShardedIndex(synthetic_collection, backend="hintm_hybrid",
                             num_shards=4, num_bits=7)
        coordinator = MaintenanceCoordinator(
            index, config=MaintenanceConfig(repartition=False)
        )
        lo, hi = synthetic_collection.span()
        index.insert(Interval(10**6, lo, lo + 1))  # delta in the first shard only
        report = coordinator.maintain(force=True)
        assert report.rebuilt_shards == [0]

    def test_skew_triggers_repartition(self, rng):
        # heavily clumped data: equi-width cuts leave most copies in shard 0
        starts = np.concatenate([
            rng.integers(0, 1_000, size=2_700),
            rng.integers(1_000, 100_000, size=300),
        ])
        collection = IntervalCollection(
            ids=np.arange(3_000), starts=np.sort(starts), ends=np.sort(starts) + 5
        )
        index = ShardedIndex(collection, backend="hintm_hybrid",
                             num_shards=4, num_bits=7, strategy="equi_width")
        sizes = index.ingest_journal.live_sizes()
        assert max(sizes) / (sum(sizes) / len(sizes)) > 1.5
        coordinator = MaintenanceCoordinator(
            index, config=MaintenanceConfig(skew_threshold=1.5)
        )
        # build-time skew alone never repartitions: the equi-width choice
        # was explicit, and no update has drifted the sizes yet
        assert not coordinator.maintain().repartitioned
        assert index.plan.strategy == "equi_width"
        lo, hi = collection.span()
        index.insert(Interval(10**6, lo, lo + 3))  # now the sizes have drifted
        assert index.delete(10**6)
        oracle = {
            Query(lo, hi): len(collection),
            Query(lo, lo + 500): int(np.sum(
                (collection.starts <= lo + 500) & (lo <= collection.ends)
            )),
        }
        report = coordinator.maintain()
        assert report.repartitioned
        assert report.skew > 1.5
        assert report.cuts == index.plan.cuts
        balanced = index.ingest_journal.live_sizes()
        assert max(balanced) / (sum(balanced) / len(balanced)) < 1.5
        for query, expected in oracle.items():
            assert index.query_count(query) == expected
            assert len(set(index.query(query))) == expected
        # a second pass finds balanced cuts and leaves them alone
        assert not coordinator.maintain().repartitioned

    def test_repartition_disabled_by_config(self, rng):
        starts = np.sort(np.concatenate([
            rng.integers(0, 1_000, size=1_800),
            rng.integers(1_000, 100_000, size=200),
        ]))
        collection = IntervalCollection(
            ids=np.arange(2_000), starts=starts, ends=starts + 5
        )
        index = ShardedIndex(collection, backend="hintm_hybrid", num_shards=4, num_bits=7)
        cuts = index.plan.cuts
        lo, _ = collection.span()
        index.insert(Interval(10**6, lo, lo + 3))  # drift, so only the config gates
        coordinator = MaintenanceCoordinator(
            index, config=MaintenanceConfig(repartition=False)
        )
        assert not coordinator.maintain().repartitioned
        assert index.plan.cuts == cuts

    def test_plain_hybrid_store_maintain(self, synthetic_collection):
        store = IntervalStore.open(synthetic_collection, "hintm_hybrid", num_bits=7)
        lo, _ = synthetic_collection.span()
        for i in range(20):
            store.insert(Interval(10**6 + i, lo + i, lo + i + 5))
        assert store.index.delta_size == 20
        report = store.maintenance(
            policy=ThresholdRebuildPolicy(fraction=0.001, min_delta=1)
        ).maintain()
        assert report.rebuilt_shards == [0]
        assert store.index.delta_size == 0
        assert store.index.rebuilds == 1

    def test_static_backend_maintain_is_noop(self, synthetic_collection):
        store = IntervalStore.open(synthetic_collection, "hintm_opt", num_bits=7)
        report = store.maintain(force=True)
        assert isinstance(report, MaintenanceReport)
        assert report.actions == 0

    def test_store_maintenance_caching_and_replacement(self, synthetic_collection):
        store = IntervalStore.open(synthetic_collection, "hintm_hybrid", num_bits=7)
        first = store.maintenance()
        assert store.maintenance() is first
        replaced = store.maintenance(policy="cost_model")
        assert replaced is not first
        assert store.maintenance() is replaced
        store.close()

    def test_background_thread_maintains_when_idle(self, synthetic_collection, rng):
        index = ShardedIndex(synthetic_collection, backend="hintm_hybrid",
                             num_shards=4, num_bits=7)
        coordinator = MaintenanceCoordinator(
            index,
            config=MaintenanceConfig(idle_seconds=0.0, interval_seconds=0.02),
        )
        _apply(index, _random_updates(synthetic_collection, rng, count=60))
        assert sum(index.ingest_journal.pending_depths()) > 0
        coordinator.start()
        assert coordinator.running
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and not coordinator.reports:
            time.sleep(0.02)
        coordinator.stop()
        assert not coordinator.running
        assert coordinator.reports, "background thread never ran a pass"
        assert sum(index.ingest_journal.pending_depths()) == 0
        coordinator.stop()  # idempotent

    def test_background_maintenance_never_loses_foreground_updates(self, rng):
        """Repartitions and shard rebuilds snapshot-then-swap state; a
        foreground update interleaving with either must never be discarded."""
        starts = np.sort(rng.integers(0, 1_000, size=2_000))
        collection = IntervalCollection(
            ids=np.arange(2_000), starts=starts, ends=starts + 5
        )
        index = ShardedIndex(collection, backend="hintm_hybrid",
                             num_shards=4, num_bits=7)
        coordinator = MaintenanceCoordinator(
            index,
            config=MaintenanceConfig(
                idle_seconds=0.0, interval_seconds=0.005, skew_threshold=1.1
            ),
            policy=ThresholdRebuildPolicy(fraction=0.001, min_delta=1),
        )
        live = {
            int(i): (int(s), int(e))
            for i, s, e in zip(collection.ids, collection.starts, collection.ends)
        }
        coordinator.start()
        try:
            next_id = 10**6
            deadline = time.monotonic() + 1.5
            while time.monotonic() < deadline:
                start = int(rng.integers(0, 200_000))
                index.insert(Interval(next_id, start, start + 100))
                live[next_id] = (start, start + 100)
                next_id += 1
                victim = int(rng.choice(list(live)))
                assert index.delete(victim), f"lost update: delete({victim})"
                del live[victim]
        finally:
            coordinator.stop()
        assert len(index) == len(live)
        starts = np.array([s for s, _ in live.values()])
        ends = np.array([e for _, e in live.values()])
        ids = np.array(list(live.keys()))
        for _ in range(25):
            a = int(rng.integers(0, 200_000))
            b = a + int(rng.integers(0, 200_000))
            expected = sorted(ids[(starts <= b) & (a <= ends)].tolist())
            assert sorted(index.query(Query(a, b))) == expected
            assert index.query_count(Query(a, b)) == len(expected)

    def test_noop_repartition_resets_drift_counter(self, synthetic_collection):
        """A stably-skewed index must not re-materialise the live collection
        on every pass: the no-op repartition re-validates the cuts."""
        index = ShardedIndex(synthetic_collection, backend="hintm_hybrid",
                             num_shards=4, num_bits=7, strategy="balanced")
        lo, _ = synthetic_collection.span()
        index.insert(Interval(10**6, lo, lo + 1))
        assert index.delete(10**6)
        assert index.updates_since_partition == 2
        # balanced cuts over (near-)unchanged data re-plan to themselves
        assert not index.repartition()
        assert index.updates_since_partition == 0

    def test_background_thread_respects_idle_window(self, synthetic_collection):
        index = ShardedIndex(synthetic_collection, backend="hintm_hybrid",
                             num_shards=4, num_bits=7)
        coordinator = MaintenanceCoordinator(
            index,
            config=MaintenanceConfig(idle_seconds=3600.0, interval_seconds=0.02),
        )
        with coordinator:
            coordinator.start()
            lo, hi = synthetic_collection.span()
            deadline = time.monotonic() + 0.3
            while time.monotonic() < deadline:
                index.query_count(Query(lo, hi))  # keeps the index busy
            assert not coordinator.reports  # never idle long enough


class TestQueryStatsSurface:
    def test_sharded_stats_carry_ingest_state(self, synthetic_collection):
        store = ShardedStore.open(synthetic_collection, "hintm_hybrid",
                                  num_shards=4, num_bits=7)
        lo, hi = synthetic_collection.span()
        store.insert(Interval(10**6, lo, lo + 1))
        stats = store.query().overlapping(lo, hi).stats()
        assert stats.extra["ingest_pending"] == 1.0
        assert stats.extra["snapshot_generation"] == 0.0
        # single-shard plans surface the same counters
        narrow = store.query().overlapping(lo, lo).stats()
        assert "ingest_pending" in narrow.extra

    def test_ingest_gauges_merge_as_max_not_sum(self):
        """Summing instrumented stats over a workload must not fabricate a
        snapshot generation (gauges take max; real counters still sum)."""
        from repro.core.base import QueryStats

        rows = [
            QueryStats(comparisons=5, extra={"snapshot_generation": 2.0,
                                             "ingest_pending": 3.0, "x": 1.0})
            for _ in range(4)
        ]
        total = sum(rows)
        assert total.comparisons == 20
        assert total.extra["snapshot_generation"] == 2.0
        assert total.extra["ingest_pending"] == 3.0
        assert total.extra["x"] == 4.0  # free-form extras keep summing

    def test_maintenance_state_shape(self, synthetic_collection):
        index = ShardedIndex(synthetic_collection, backend="hintm_hybrid",
                             num_shards=4, num_bits=7)
        state = index.maintenance_state()
        assert state["num_shards"] == 4
        assert state["ingest_mode"] == "journal"
        assert len(state["pending_per_shard"]) == 4
        assert len(state["delta_per_shard"]) == 4
        assert state["snapshot_generation"] == 0
        assert not state["update_dirty"]


class TestAdaptiveShardCount:
    def test_traversal_bound_serial_prefers_one_shard(self, synthetic_collection):
        for backend in ("hintm", "hintm_opt", "hintm_hybrid"):
            assert recommend_shard_count(
                synthetic_collection, backend, executor="serial"
            ) == 1

    def test_traversal_bound_processes_prefers_cores(self, synthetic_collection):
        assert recommend_shard_count(
            synthetic_collection, "hintm", executor="processes", workers=4
        ) == 4
        assert recommend_shard_count(
            synthetic_collection, "hintm", executor="processes", workers=2
        ) == 2

    def test_scan_bound_serial_gains_from_pruning(self, synthetic_collection):
        assert recommend_shard_count(
            synthetic_collection, "naive", executor="serial"
        ) > 1

    def test_max_shards_cap_and_edge_cases(self, synthetic_collection):
        assert recommend_shard_count(
            synthetic_collection, "naive", executor="serial", max_shards=2
        ) <= 2
        assert recommend_shard_count(IntervalCollection.empty(), "naive") == 1
        with pytest.raises(ValueError, match="executor"):
            recommend_shard_count(synthetic_collection, "naive", executor="bogus")

    def test_store_open_auto_shards(self, synthetic_collection):
        serial = IntervalStore.open(synthetic_collection, "hintm", num_shards="auto")
        assert not isinstance(serial, ShardedStore)
        with IntervalStore.open(
            synthetic_collection, "hintm", num_shards="auto",
            executor="processes", workers=4,
        ) as store:
            assert isinstance(store, ShardedStore)
            assert store.num_shards == 4

    def test_store_open_rejects_other_strings(self, synthetic_collection):
        with pytest.raises(ValueError, match="auto"):
            IntervalStore.open(synthetic_collection, "hintm", num_shards="many")


class TestReportSummary:
    def test_summary_mentions_every_action(self):
        report = MaintenanceReport(
            folded_ops=12, rebuilt_shards=[1, 3], repartitioned=True,
            cuts=(10, 20), skew=2.5, snapshot_refreshed=True, generation=2,
            seconds=0.01,
        )
        text = report.summary()
        assert "12" in text and "[1, 3]" in text
        assert "re-partitioned" in text and "generation 2" in text
        assert report.actions == 5
        idle = MaintenanceReport()
        assert "nothing to do" in idle.summary()
        assert idle.actions == 0


class TestCalibration:
    """``MaintenanceConfig.calibrate``: measured betas into the cost model."""

    def test_calibrate_configures_cost_model_policy(self, synthetic_collection):
        index = ShardedIndex(synthetic_collection, backend="hintm_hybrid",
                             num_shards=2, num_bits=7)
        defaults = CostModelRebuildPolicy()
        coordinator = MaintenanceCoordinator(
            index,
            config=MaintenanceConfig(policy="cost_model", calibrate=True),
        )
        beta_cmp, beta_acc = coordinator.calibrated_betas
        assert beta_cmp > 0 and beta_acc > 0
        # the policy now amortises with the measured constant, and a real
        # micro-benchmark essentially never lands on the hard-coded default
        assert coordinator.policy.beta_cmp == beta_cmp
        assert coordinator.policy.beta_cmp != defaults.beta_cmp
        assert coordinator.state()["calibrated_betas"] == (beta_cmp, beta_acc)
        index.close()

    def test_calibrate_leaves_threshold_policy_untouched(self, synthetic_collection):
        index = ShardedIndex(synthetic_collection, backend="hintm_hybrid",
                             num_shards=2, num_bits=7)
        coordinator = MaintenanceCoordinator(
            index, config=MaintenanceConfig(policy="threshold", calibrate=True)
        )
        # the measurement still runs (recorded for display) but the
        # threshold rule has no beta to configure
        assert coordinator.calibrated_betas is not None
        assert not hasattr(coordinator.policy, "beta_cmp")
        index.close()

    def test_no_calibration_by_default(self, synthetic_collection):
        index = ShardedIndex(synthetic_collection, backend="hintm_hybrid",
                             num_shards=2, num_bits=7)
        coordinator = MaintenanceCoordinator(index, policy="cost_model")
        assert coordinator.calibrated_betas is None
        assert coordinator.policy.beta_cmp == CostModelRebuildPolicy().beta_cmp
        index.close()
