"""Unit tests for the analytical model (paper Sections 3.2.3 / 3.3)."""

import pytest

from repro.hint.hintm import HINTm
from repro.hint.model import (
    CostModel,
    DatasetStatistics,
    estimate_m_opt,
    expected_comparison_partitions,
    expected_result_count,
    measure_betas,
    replication_factor,
)


@pytest.fixture(scope="module")
def stats_long():
    """BOOKS-like statistics: long intervals (about 7% of the domain)."""
    return DatasetStatistics(
        cardinality=100_000,
        mean_interval_length=0.07 * 31_507_200,
        domain_length=31_507_200,
        domain_bits=25,
    )


@pytest.fixture(scope="module")
def stats_short():
    """TAXIS-like statistics: very short intervals."""
    return DatasetStatistics(
        cardinality=200_000,
        mean_interval_length=758,
        domain_length=31_768_287,
        domain_bits=25,
    )


class TestDatasetStatistics:
    def test_from_collection(self, synthetic_collection):
        stats = DatasetStatistics.from_collection(synthetic_collection)
        assert stats.cardinality == len(synthetic_collection)
        assert stats.domain_length == synthetic_collection.domain_length()
        assert stats.mean_interval_length == pytest.approx(
            synthetic_collection.mean_duration()
        )
        assert stats.domain_bits >= 1


class TestReplicationFactor:
    def test_long_intervals_replicate_more(self, stats_long, stats_short):
        """Theorem 1: BOOKS-like data has a much larger k than TAXIS-like data."""
        m = 10
        assert replication_factor(stats_long, m) > replication_factor(stats_short, m)

    def test_k_grows_with_m(self, stats_long):
        values = [replication_factor(stats_long, m) for m in range(5, 20)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_k_at_least_one(self, stats_short):
        assert replication_factor(stats_short, 5) >= 1.0

    def test_k_close_to_paper_for_books_profile(self, stats_long):
        """The paper's Table 7 predicts k around 6 for BOOKS at m=10."""
        assert 4.0 <= replication_factor(stats_long, 10) <= 9.0

    def test_prediction_tracks_measured_replication(self, books_like_collection):
        stats = DatasetStatistics.from_collection(books_like_collection)
        index = HINTm(books_like_collection, num_bits=10)
        predicted = replication_factor(stats, 10)
        measured = index.replication_factor
        assert predicted == pytest.approx(measured, rel=0.6)


class TestExpectedCounts:
    def test_expected_result_count_scales_with_extent(self, stats_long):
        small = expected_result_count(stats_long, 1_000)
        large = expected_result_count(stats_long, 1_000_000)
        assert large > small > 0

    def test_expected_comparison_partitions_bounds(self):
        assert expected_comparison_partitions(10, 1_000_000, 31_000_000) == pytest.approx(4.0)
        tiny = expected_comparison_partitions(10, 0, 31_000_000)
        assert 1.0 <= tiny <= 4.0

    def test_expected_comparison_partitions_monotone_in_extent(self):
        values = [
            expected_comparison_partitions(12, extent, 1_000_000)
            for extent in (0, 10, 100, 1_000, 100_000)
        ]
        assert all(b >= a for a, b in zip(values, values[1:]))


class TestCostModel:
    def test_comparison_cost_decreases_with_m(self, stats_long):
        model = CostModel(stats=stats_long)
        costs = [model.comparison_cost(m) for m in range(5, 20)]
        assert all(b <= a for a, b in zip(costs, costs[1:]))

    def test_access_cost_nonnegative(self, stats_long):
        model = CostModel(stats=stats_long)
        for m in range(5, 22):
            assert model.access_cost(m, 31_507) >= 0.0

    def test_query_cost_converges(self, stats_long):
        model = CostModel(stats=stats_long)
        extent = 0.001 * stats_long.domain_length
        late = model.query_cost(stats_long.domain_bits, extent)
        early = model.query_cost(3, extent)
        assert early > late

    def test_space_cost_grows_with_m(self, stats_long):
        model = CostModel(stats=stats_long)
        assert model.space_cost(16) >= model.space_cost(8)


class TestMOpt:
    def test_m_opt_within_range(self, stats_long):
        m_opt = estimate_m_opt(stats_long, query_extent=0.001 * stats_long.domain_length)
        assert 1 <= m_opt <= stats_long.domain_bits

    def test_m_opt_smaller_for_long_intervals(self, stats_long, stats_short):
        """Table 7: BOOKS needs a much smaller m_opt than TAXIS."""
        extent_long = 0.001 * stats_long.domain_length
        extent_short = 0.001 * stats_short.domain_length
        m_long = estimate_m_opt(stats_long, extent_long)
        m_short = estimate_m_opt(stats_short, extent_short)
        assert m_long < m_short

    def test_m_opt_respects_max_m(self, stats_short):
        m_opt = estimate_m_opt(stats_short, query_extent=1_000, max_m=12)
        assert m_opt <= 12

    def test_m_opt_books_profile_close_to_paper(self, stats_long):
        """The paper's model picks m_opt = 9-10 for BOOKS."""
        m_opt = estimate_m_opt(stats_long, query_extent=0.001 * stats_long.domain_length)
        assert 6 <= m_opt <= 14


class TestMeasureBetas:
    def test_betas_positive_and_ordered(self):
        beta_cmp, beta_acc = measure_betas(sample_size=50_000, repeats=1)
        assert beta_cmp > 0
        assert beta_acc > 0
        # both are tiny per-item costs on any machine this runs on
        assert beta_cmp < 1e-3
        assert beta_acc < 1e-3
