"""Unit tests for the naive linear-scan oracle (repro.baselines.naive)."""

from repro.baselines.naive import NaiveIndex
from repro.core.interval import Interval, Query


class TestNaiveIndex:
    def test_query_matches_collection_scan(self, tiny_collection):
        index = NaiveIndex.build(tiny_collection)
        q = Query(4, 9)
        expected = sorted(tiny_collection.query_ids(q).tolist())
        assert sorted(index.query(q)) == expected

    def test_stab(self, tiny_collection):
        index = NaiveIndex.build(tiny_collection)
        assert sorted(index.stab(3)) == sorted(
            s.id for s in tiny_collection if s.contains_point(3)
        )

    def test_len(self, tiny_collection):
        index = NaiveIndex.build(tiny_collection)
        assert len(index) == len(tiny_collection)

    def test_insert_and_query(self, tiny_collection):
        index = NaiveIndex.build(tiny_collection)
        index.insert(Interval(99, 100, 110))
        assert 99 in index.query(Query(105, 106))
        assert len(index) == len(tiny_collection) + 1

    def test_delete(self, tiny_collection):
        index = NaiveIndex.build(tiny_collection)
        assert index.delete(1) is True
        assert 1 not in index.query(Query(0, 15))
        assert index.delete(1) is False  # already deleted
        assert index.delete(12345) is False  # never existed
        assert len(index) == len(tiny_collection) - 1

    def test_query_with_stats_counts_results(self, tiny_collection):
        index = NaiveIndex.build(tiny_collection)
        results, stats = index.query_with_stats(Query(0, 15))
        assert stats.results == len(results) == len(tiny_collection)
        assert stats.candidates == len(tiny_collection)

    def test_memory_bytes_positive(self, tiny_collection):
        assert NaiveIndex.build(tiny_collection).memory_bytes() > 0

    def test_interval_lookup_excludes_deleted(self, tiny_collection):
        index = NaiveIndex.build(tiny_collection)
        index.delete(0)
        lookup = index._interval_lookup()
        assert 0 not in lookup
        assert lookup[3] == Interval(3, 10, 12)
