"""Acceptance gate: observability must be ~free on the cached serving path.

The observability PR instruments every request -- a root span, the
latency histogram, the slow-query check -- but the tracing layer no-ops
on untraced work and the metrics are lock-per-increment counters, so the
hot cached path (hit the result cache, return a pre-encoded body) must
stay within 10% of a server built with ``instrument=False``.

Measured the way the serving benchmark measures: a repeated hot query
over real keep-alive HTTP, interleaved A/B round pairs so each
comparison sees the same host load, and the gate takes the best pair
ratio -- one scheduler hiccup degrades a pair, not the verdict.
"""

import random

from repro.core.interval import Interval, IntervalCollection
from repro.engine import IntervalStore
from repro.serve.client import ServeClient
from repro.serve.server import start_server_thread

CARDINALITY = 20_000
REQUESTS_PER_ROUND = 400
REPEATS = 5
MAX_OVERHEAD = 0.10


def _collection(seed=19):
    rng = random.Random(seed)
    intervals = []
    for i in range(CARDINALITY):
        start = rng.randrange(0, 1_000_000)
        intervals.append(Interval(i, start, start + rng.randrange(1, 5_000)))
    return IntervalCollection.from_intervals(intervals)


def _cached_round(port: int, query) -> float:
    """Requests/second for one round of the same hot (cached) query."""
    import time

    client = ServeClient(port=port)
    try:
        client.query(*query)  # prime the cache entry
        t0 = time.perf_counter()
        for _ in range(REQUESTS_PER_ROUND):
            client.query(*query)
        elapsed = time.perf_counter() - t0
    finally:
        client.close()
    return REQUESTS_PER_ROUND / elapsed if elapsed > 0 else 0.0


def test_instrumentation_overhead_within_10_percent_on_cached_serving():
    collection = _collection()
    query = (100_000, 140_000)
    pairs = []
    servers = {}
    stores = {}
    try:
        for instrument in (True, False):
            store = IntervalStore.open(collection, "hintm_opt")
            stores[instrument] = store
            servers[instrument] = start_server_thread(
                store, host="127.0.0.1", port=0, instrument=instrument
            )
        # one throwaway round per mode (JIT-warm caches, settle any
        # leftover pool threads from earlier tests), then paired A/B
        # rounds: the two modes of a pair run back to back, so host-load
        # drift degrades a pair's *both* legs rather than skewing one
        for instrument in (True, False):
            _cached_round(servers[instrument].port, query)
        for _ in range(REPEATS):
            on = _cached_round(servers[True].port, query)
            off = _cached_round(servers[False].port, query)
            pairs.append((on, off))
    finally:
        for handle in servers.values():
            handle.stop()
        for store in stores.values():
            store.close()
    assert all(on > 0 and off > 0 for on, off in pairs)
    ratio = max(on / off for on, off in pairs)
    best = max(pairs, key=lambda pair: pair[0] / pair[1])
    assert ratio >= 1.0 - MAX_OVERHEAD, (
        f"instrumented cached serving ran at {ratio:.2%} of the "
        f"uninstrumented baseline in its best paired round "
        f"({best[0]:,.0f} vs {best[1]:,.0f} req/s); the observability "
        f"layer must cost <= {MAX_OVERHEAD:.0%}"
    )
