"""Unit tests for the fully optimized HINT^m (paper Sections 4.2/4.3)."""

import pytest

from repro.baselines.naive import NaiveIndex
from repro.core.domain import Domain
from repro.core.errors import DomainError
from repro.core.interval import IntervalCollection, Query
from repro.hint.optimized import OptimizedHINTm
from repro.hint.subdivided import SubdividedHINTm

FLAG_VARIANTS = [
    pytest.param(True, True, id="sparse+columnar"),
    pytest.param(True, False, id="sparse-only"),
    pytest.param(False, True, id="columnar-only"),
    pytest.param(False, False, id="neither"),
]


class TestConstruction:
    def test_invalid_bits(self, synthetic_collection):
        with pytest.raises(DomainError):
            OptimizedHINTm(synthetic_collection, num_bits=0)

    def test_mismatched_domain(self, synthetic_collection):
        with pytest.raises(DomainError):
            OptimizedHINTm(synthetic_collection, num_bits=6, domain=Domain.identity(4))

    def test_properties(self, synthetic_collection):
        index = OptimizedHINTm(synthetic_collection, num_bits=8)
        assert index.num_bits == 8
        assert index.num_levels == 9
        assert index.sparse_directory and index.columnar
        assert len(index) == len(synthetic_collection)
        assert 1.0 <= index.replication_factor <= 2 * 9

    def test_empty_collection(self):
        index = OptimizedHINTm(IntervalCollection.empty(), num_bits=5)
        assert len(index) == 0
        assert index.query(Query(0, 100)) == []

    def test_replication_matches_subdivided(self, synthetic_collection):
        """The merged layout stores exactly the same assignments as the dict layout."""
        optimized = OptimizedHINTm(synthetic_collection, num_bits=8)
        subdivided = SubdividedHINTm(synthetic_collection, num_bits=8)
        assert optimized.replication_factor == pytest.approx(subdivided.replication_factor)
        assert optimized.nonempty_partitions() == subdivided.nonempty_partitions()

    def test_level_occupancy_totals(self, synthetic_collection):
        index = OptimizedHINTm(synthetic_collection, num_bits=8)
        assert sum(index.level_occupancy()) == pytest.approx(
            index.replication_factor * len(index)
        )

    def test_insert_not_supported(self, synthetic_collection):
        from repro.core.interval import Interval

        index = OptimizedHINTm(synthetic_collection, num_bits=6)
        with pytest.raises(NotImplementedError):
            index.insert(Interval(1, 2, 3))


class TestQueryCorrectness:
    @pytest.mark.parametrize("sparse,columnar", FLAG_VARIANTS)
    def test_matches_naive(self, synthetic_collection, synthetic_queries, sparse, columnar):
        index = OptimizedHINTm(
            synthetic_collection, num_bits=8, sparse_directory=sparse, columnar=columnar
        )
        naive = NaiveIndex.build(synthetic_collection)
        for q in synthetic_queries[:60]:
            assert sorted(index.query(q)) == sorted(naive.query(q))

    @pytest.mark.parametrize("dataset_fixture", ["books_like_collection", "taxis_like_collection"])
    def test_matches_naive_on_real_like(self, request, dataset_fixture):
        collection = request.getfixturevalue(dataset_fixture)
        index = OptimizedHINTm(collection, num_bits=10)
        naive = NaiveIndex.build(collection)
        lo, hi = collection.span()
        span = hi - lo
        for i in range(25):
            start = lo + i * span // 25
            for extent in (0, span // 1000, span // 100, span // 10):
                q = Query(start, min(hi, start + extent))
                assert sorted(index.query(q)) == sorted(naive.query(q))

    def test_no_duplicates(self, synthetic_collection, synthetic_queries):
        index = OptimizedHINTm(synthetic_collection, num_bits=8)
        for q in synthetic_queries[:30]:
            results = index.query(q)
            assert len(results) == len(set(results))

    def test_agrees_with_subdivided(self, synthetic_collection, synthetic_queries):
        optimized = OptimizedHINTm(synthetic_collection, num_bits=9)
        subdivided = SubdividedHINTm(synthetic_collection, num_bits=9)
        for q in synthetic_queries[:60]:
            assert sorted(optimized.query(q)) == sorted(subdivided.query(q))

    def test_stabbing_queries(self, synthetic_collection):
        index = OptimizedHINTm(synthetic_collection, num_bits=9)
        naive = NaiveIndex.build(synthetic_collection)
        lo, hi = synthetic_collection.span()
        for i in range(0, 40):
            point = lo + i * (hi - lo) // 40
            assert sorted(index.stab(point)) == sorted(naive.stab(point))


class TestOptimizationEffects:
    def test_sparse_directory_shrinks_directory_on_skewed_data(self, taxis_like_collection):
        """Section 4.2: only non-empty partitions are materialised."""
        sparse = OptimizedHINTm(taxis_like_collection, num_bits=12, sparse_directory=True)
        dense = OptimizedHINTm(taxis_like_collection, num_bits=12, sparse_directory=False)
        assert sparse.memory_bytes() < dense.memory_bytes()

    def test_comparisons_limited_to_boundary_partitions(self, synthetic_collection):
        """Lemma 4 instrumented: few partitions require comparisons."""
        index = OptimizedHINTm(synthetic_collection, num_bits=10)
        lo, hi = synthetic_collection.span()
        span = hi - lo
        compared = []
        for i in range(40):
            start = lo + (i * 97) % span
            q = Query(start, min(hi, start + span // 64))
            _, stats = index.query_with_stats(q)
            compared.append(stats.partitions_compared)
        assert sum(compared) / len(compared) <= 5.0

    def test_tombstone_delete(self, synthetic_collection):
        index = OptimizedHINTm(synthetic_collection, num_bits=8)
        victim = int(synthetic_collection.ids[3])
        assert index.delete(victim) is True
        lo, hi = synthetic_collection.span()
        assert victim not in index.query(Query(lo, hi))
        assert index.delete(victim) is False
        assert len(index) == len(synthetic_collection) - 1

    def test_memory_bytes_positive_and_consistent(self, synthetic_collection):
        columnar = OptimizedHINTm(synthetic_collection, num_bits=8, columnar=True)
        rowwise = OptimizedHINTm(synthetic_collection, num_bits=8, columnar=False)
        assert columnar.memory_bytes() > 0
        assert rowwise.memory_bytes() > 0
