"""Unit and property tests for Algorithm 1 (repro.hint.partitioning)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hint.partitioning import (
    covered_range,
    iter_levels_bottom_up,
    partition_assignments,
    relevant_offsets,
)


class TestPaperExamples:
    def test_interval_5_9_matches_figure_5(self):
        """[5, 9] in the 4-bit domain goes to P(4,5), P(3,3), P(3,4)."""
        assignments = partition_assignments(4, 5, 9)
        as_set = {(a.level, a.offset) for a in assignments}
        assert as_set == {(4, 5), (3, 3), (3, 4)}

    def test_interval_5_9_original_partition(self):
        """[5, 9] is an original only in P(4,5) (where its start lies)."""
        assignments = partition_assignments(4, 5, 9)
        originals = [(a.level, a.offset) for a in assignments if a.is_original]
        assert originals == [(4, 5)]

    def test_point_interval_single_partition(self):
        assignments = partition_assignments(4, 5, 5)
        assert len(assignments) == 1
        assert (assignments[0].level, assignments[0].offset) == (4, 5)
        assert assignments[0].is_original

    def test_full_domain_interval_goes_to_root(self):
        assignments = partition_assignments(4, 0, 15)
        assert {(a.level, a.offset) for a in assignments} == {(0, 0)}
        assert assignments[0].is_original

    def test_left_aligned_interval(self):
        # [4, 5] is exactly one level-3 partition
        assignments = partition_assignments(4, 4, 5)
        assert {(a.level, a.offset) for a in assignments} == {(3, 2)}
        assert assignments[0].is_original

    def test_interval_4_6(self):
        # [4, 6] = [4,5] + [6]: original where the start lies (level 3, offset 2)
        assignments = partition_assignments(4, 4, 6)
        as_set = {(a.level, a.offset, a.is_original) for a in assignments}
        assert as_set == {(4, 6, False), (3, 2, True)}


class TestValidation:
    def test_reversed_interval_raises(self):
        with pytest.raises(ValueError):
            partition_assignments(4, 9, 5)

    def test_out_of_domain_raises(self):
        with pytest.raises(ValueError):
            partition_assignments(4, 0, 16)
        with pytest.raises(ValueError):
            partition_assignments(4, -1, 3)


class TestHelpers:
    def test_relevant_offsets(self):
        assert relevant_offsets(4, 4, 5, 9) == (5, 9)
        assert relevant_offsets(4, 3, 5, 9) == (2, 4)
        assert relevant_offsets(4, 0, 5, 9) == (0, 0)

    def test_covered_range(self):
        assert covered_range(4, 4, 5) == (5, 5)
        assert covered_range(4, 3, 4) == (8, 9)
        assert covered_range(4, 0, 0) == (0, 15)

    def test_iter_levels_bottom_up(self):
        assert list(iter_levels_bottom_up(3)) == [3, 2, 1, 0]


def _covered_values(m, assignments):
    values = set()
    for a in assignments:
        lo, hi = covered_range(m, a.level, a.offset)
        values.update(range(lo, hi + 1))
    return values


@settings(max_examples=400, deadline=None)
@given(data=st.data(), m=st.integers(1, 10))
def test_assignment_invariants(data, m):
    """Algorithm 1 invariants from Section 3.1:

    * at most two partitions per level,
    * the assigned partitions exactly tile the interval (no gaps, no spill),
    * the partitions are pairwise disjoint,
    * exactly one assignment is the original and it contains the start point.
    """
    max_value = (1 << m) - 1
    start = data.draw(st.integers(0, max_value))
    end = data.draw(st.integers(start, max_value))
    assignments = partition_assignments(m, start, end)

    per_level: dict[int, int] = {}
    for a in assignments:
        per_level[a.level] = per_level.get(a.level, 0) + 1
    assert all(count <= 2 for count in per_level.values())

    covered = _covered_values(m, assignments)
    assert covered == set(range(start, end + 1))

    total_covered = sum(
        covered_range(m, a.level, a.offset)[1] - covered_range(m, a.level, a.offset)[0] + 1
        for a in assignments
    )
    assert total_covered == len(covered)  # disjointness

    originals = [a for a in assignments if a.is_original]
    assert len(originals) == 1
    lo, hi = covered_range(m, originals[0].level, originals[0].offset)
    assert lo <= start <= hi


@settings(max_examples=200, deadline=None)
@given(data=st.data(), m=st.integers(1, 10))
def test_assignment_count_bound(data, m):
    """No interval is assigned to more than 2(m+1) partitions."""
    max_value = (1 << m) - 1
    start = data.draw(st.integers(0, max_value))
    end = data.draw(st.integers(start, max_value))
    assignments = partition_assignments(m, start, end)
    assert len(assignments) <= 2 * (m + 1)


@settings(max_examples=200, deadline=None)
@given(data=st.data())
def test_original_is_partition_of_start_prefix(data):
    """The original partition's offset equals the start point's prefix at that level."""
    m = 8
    max_value = (1 << m) - 1
    start = data.draw(st.integers(0, max_value))
    end = data.draw(st.integers(start, max_value))
    for a in partition_assignments(m, start, end):
        expected_original = (start >> (m - a.level)) == a.offset
        assert a.is_original == expected_original
