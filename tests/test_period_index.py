"""Unit tests for the period index baseline (range + duration queries)."""

import pytest

from repro.baselines.naive import NaiveIndex
from repro.baselines.period_index import PeriodIndex
from repro.core.interval import Interval, IntervalCollection, Query


class TestPeriodIndexStructure:
    def test_invalid_parameters(self, tiny_collection):
        with pytest.raises(ValueError):
            PeriodIndex(tiny_collection, num_coarse_partitions=0)
        with pytest.raises(ValueError):
            PeriodIndex(tiny_collection, num_levels=0)

    def test_replication_factor_bounded_for_short_intervals(self):
        short = IntervalCollection.from_pairs([(i * 100, i * 100 + 2) for i in range(200)])
        index = PeriodIndex(short, num_coarse_partitions=10, num_levels=4)
        # short intervals go to fine levels, at most a couple of divisions each
        assert index.replication_factor <= 3.0

    def test_long_intervals_assigned_to_coarse_levels(self):
        data = IntervalCollection.from_pairs([(0, 10_000)] * 20 + [(5, 6)] * 20)
        index = PeriodIndex(data, num_coarse_partitions=4, num_levels=3)
        assert len(index) == 40

    def test_empty_collection(self):
        index = PeriodIndex(IntervalCollection.empty())
        assert len(index) == 0
        assert index.query(Query(0, 10)) == []


class TestPeriodIndexQueries:
    @pytest.mark.parametrize(
        "coarse,levels", [(1, 1), (5, 3), (20, 4), (50, 2)]
    )
    def test_matches_naive(self, synthetic_collection, synthetic_queries, coarse, levels):
        index = PeriodIndex(
            synthetic_collection, num_coarse_partitions=coarse, num_levels=levels
        )
        naive = NaiveIndex.build(synthetic_collection)
        for q in synthetic_queries[:40]:
            assert sorted(index.query(q)) == sorted(naive.query(q))

    def test_no_duplicates_across_coarse_partitions(self):
        # intervals crossing coarse-partition boundaries must be reported once
        data = IntervalCollection.from_pairs([(i * 7, i * 7 + 300) for i in range(100)])
        index = PeriodIndex(data, num_coarse_partitions=8, num_levels=3)
        results = index.query(Query(0, 1000))
        assert len(results) == len(set(results))

    def test_duration_query_filters_short_intervals(self):
        data = IntervalCollection.from_intervals(
            [Interval(0, 0, 5), Interval(1, 0, 100), Interval(2, 2, 300), Interval(3, 10, 11)]
        )
        index = PeriodIndex(data, num_coarse_partitions=2, num_levels=3)
        results = index.query_with_duration(Query(0, 50), min_duration=50)
        assert sorted(results) == [1, 2]

    def test_duration_query_zero_equals_range_query(self, synthetic_collection):
        index = PeriodIndex(synthetic_collection, num_coarse_partitions=10, num_levels=3)
        lo, hi = synthetic_collection.span()
        q = Query(lo, lo + (hi - lo) // 10)
        assert sorted(index.query_with_duration(q, 0)) == sorted(index.query(q))


class TestPeriodIndexUpdates:
    def test_insert(self, tiny_collection):
        index = PeriodIndex(tiny_collection, num_coarse_partitions=4, num_levels=2)
        index.insert(Interval(90, 1, 2))
        assert 90 in index.query(Query(1, 1))

    def test_delete(self, tiny_collection):
        index = PeriodIndex(tiny_collection, num_coarse_partitions=4, num_levels=2)
        assert index.delete(1) is True
        assert 1 not in index.query(Query(0, 15))
        assert index.delete(404) is False
