"""Process-parallel sharded execution: equivalence, transport and lifecycle.

Covers the satellite matrix of the process-executor PR:

* sharded-vs-oracle equivalence under the :class:`ProcessExecutor` across
  every registered backend and K in {1, 2, 4, 7} (and both start methods);
* home-shard ``query_count`` against the dedup oracle on duplication-heavy
  (long-interval) collections, including after inserts and deletes;
* pickle and shared-memory round-trips of the core value types;
* executor lifecycle: pools the store created are closed with it, pools the
  caller passed in are not, and deletes probe only the owning shards.
"""

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.core.interval import (
    HAS_SHARED_MEMORY,
    Interval,
    IntervalCollection,
    Query,
    SharedCollectionBuffer,
    attach_shared_collection,
)
from repro.engine import (
    IntervalStore,
    ProcessExecutor,
    ShardedIndex,
    ShardedStore,
    ThreadedExecutor,
    available_backends,
    get_spec,
)

#: every non-composite backend takes part in the equivalence sweep
ALL_BACKENDS = [name for name in available_backends() if not get_spec(name).composite]

#: cheap construction parameters for the sweep
SMALL_KWARGS = {
    "grid1d": {"num_partitions": 32},
    "timeline": {"num_checkpoints": 16},
    "period": {"num_coarse_partitions": 8, "num_levels": 3},
    "hintm": {"num_bits": 7},
    "hintm_sub": {"num_bits": 7},
    "hintm_opt": {"num_bits": 7},
    "hintm_hybrid": {"num_bits": 7},
}


@pytest.fixture(scope="module")
def pool():
    """One process pool shared by the whole module (worker-resident caches)."""
    executor = ProcessExecutor(2)
    yield executor
    executor.close()


def _workload(collection, rng, count=20):
    lo, hi = collection.span()
    queries = []
    for _ in range(count):
        start = int(rng.integers(lo - 20, hi + 20))
        queries.append(Query(start, start + int(rng.integers(0, max((hi - lo) // 3, 1)))))
    return queries


class TestProcessShardedEquivalence:
    """ShardedStore under the process executor == the brute-force oracle."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_every_backend_matches_oracle_at_k4(self, synthetic_collection, backend, rng, pool):
        kwargs = dict(SMALL_KWARGS.get(backend, {}))
        store = ShardedStore.open(
            synthetic_collection, backend, num_shards=4, executor=pool, **kwargs
        )
        lo, hi = synthetic_collection.span()
        queries = [
            Query(int(s), min(int(s) + int(e), hi))
            for s, e in zip(
                rng.integers(lo, hi, size=15), rng.integers(0, (hi - lo) // 3, size=15)
            )
        ]
        batch = store.run_batch(queries)
        for query, ids in zip(queries, batch.ids):
            want = sorted(synthetic_collection.query_ids(query).tolist())
            assert sorted(ids) == want, (backend, query)

    @pytest.mark.parametrize("k", [1, 2, 4, 7])
    def test_shard_counts(self, synthetic_collection, k, rng, pool):
        store = ShardedStore.open(
            synthetic_collection, "hintm_opt", num_shards=k, executor=pool, num_bits=7
        )
        queries = _workload(synthetic_collection, rng, count=25)
        batch = store.run_batch(queries)
        for query, ids in zip(queries, batch.ids):
            assert sorted(ids) == sorted(synthetic_collection.query_ids(query).tolist()), (
                k,
                query,
            )

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_start_methods(self, synthetic_collection, rng, method):
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {method!r} unavailable")
        with ProcessExecutor(2, start_method=method) as executor:
            assert executor.start_method == method
            with ShardedStore.open(
                synthetic_collection, "naive", num_shards=4, executor=executor
            ) as store:
                queries = _workload(synthetic_collection, rng, count=10)
                batch = store.run_batch(queries)
                for query, ids in zip(queries, batch.ids):
                    assert sorted(ids) == sorted(
                        synthetic_collection.query_ids(query).tolist()
                    )

    def test_batch_is_deterministic_across_runs(self, synthetic_collection, rng, pool):
        store = ShardedStore.open(
            synthetic_collection, "naive", num_shards=4, executor=pool
        )
        queries = _workload(synthetic_collection, rng, count=15)
        first = [sorted(ids) for ids in store.run_batch(queries).ids]
        second = [sorted(ids) for ids in store.run_batch(queries).ids]
        assert first == second

    def test_updates_invalidate_the_worker_snapshot(self, synthetic_collection, rng, pool):
        """After an insert the process snapshot is stale; batches must still be right."""
        store = ShardedStore.open(
            synthetic_collection, "hintm_hybrid", num_shards=4, executor=pool, num_bits=7
        )
        lo, hi = synthetic_collection.span()
        mid = (lo + hi) // 2
        queries = _workload(synthetic_collection, rng, count=8)
        store.run_batch(queries)  # warm the worker-resident shards
        new = Interval(9_999_999, mid - 50, mid + 50)
        store.insert(new)
        batch = store.run_batch([Query(mid - 10, mid + 10)] + queries)
        assert 9_999_999 in batch.ids[0]
        live = {s.id: s for s in synthetic_collection}
        live[new.id] = new
        for query, ids in zip([Query(mid - 10, mid + 10)] + queries, batch.ids):
            want = sorted(s.id for s in live.values() if s.overlaps(query))
            assert sorted(ids) == want

    def test_unsharded_store_accepts_processes(self, synthetic_collection, rng):
        """The generic executor path: no shards, index shipped to the pool."""
        with IntervalStore.open(
            synthetic_collection, "naive", executor="processes", workers=2
        ) as store:
            assert isinstance(store.executor, ProcessExecutor)
            queries = _workload(synthetic_collection, rng, count=8)
            batch = store.run_batch(queries)
            for query, ids in zip(queries, batch.ids):
                assert sorted(ids) == sorted(
                    synthetic_collection.query_ids(query).tolist()
                )


class TestHomeShardCounting:
    """Multi-shard query_count == dedup oracle, without materialising ids."""

    @pytest.mark.parametrize("k", [2, 4, 7])
    def test_duplication_heavy_counts_match_oracle(self, books_like_collection, k, rng):
        """BOOKS-like data: long intervals, so most intervals span shard cuts."""
        index = ShardedIndex(books_like_collection, backend="naive", num_shards=k)
        for query in _workload(books_like_collection, rng, count=30):
            assert index.query_count(query) == len(
                set(books_like_collection.query_ids(query).tolist())
            ), (k, query)
        assert index.count_ops["home_shard"] > 0

    def test_counts_never_call_query_on_multi_shard_plans(
        self, books_like_collection, rng, monkeypatch
    ):
        index = ShardedIndex(books_like_collection, backend="naive", num_shards=4)
        queries = [
            q
            for q in _workload(books_like_collection, rng, count=30)
            if index.plan.shard_range(q.start, q.end)[0]
            < index.plan.shard_range(q.start, q.end)[1]
        ]
        assert queries, "workload produced no multi-shard queries"
        oracle = [len(set(books_like_collection.query_ids(q).tolist())) for q in queries]

        def _boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("multi-shard query_count materialised an id list")

        monkeypatch.setattr(ShardedIndex, "query", _boom)
        for shard in index.shards:
            monkeypatch.setattr(type(shard), "query", _boom, raising=False)
        assert [index.query_count(q) for q in queries] == oracle

    def test_counts_track_inserts_and_deletes(self, synthetic_collection, rng):
        index = ShardedIndex(
            synthetic_collection, backend="hintm_hybrid", num_shards=4, num_bits=7
        )
        live = {s.id: s for s in synthetic_collection}
        lo, hi = synthetic_collection.span()
        next_id = 5_000_000
        for step in range(40):
            action = rng.integers(0, 3)
            if action == 0:
                start = int(rng.integers(lo, hi))
                new = Interval(next_id, start, start + int(rng.integers(0, (hi - lo) // 2)))
                index.insert(new)
                live[new.id] = new
                next_id += 1
            elif action == 1 and live:
                victim = list(live)[int(rng.integers(0, len(live)))]
                assert index.delete(victim)
                del live[victim]
            else:
                start = int(rng.integers(lo, hi))
                query = Query(start, start + int(rng.integers(0, (hi - lo) // 2)))
                want = sum(1 for s in live.values() if s.overlaps(query))
                assert index.query_count(query) == want, (step, query)

    def test_fluent_count_uses_home_shard_path(self, books_like_collection):
        store = ShardedStore.open(books_like_collection, "naive", num_shards=4)
        lo, hi = books_like_collection.span()
        before = dict(store.index.count_ops)
        total = store.query().overlapping(lo, hi).count()
        assert total == len(books_like_collection)
        assert store.index.count_ops["home_shard"] == before["home_shard"] + 1

    def test_stabbing_and_boundary_counts(self, synthetic_collection):
        index = ShardedIndex(synthetic_collection, backend="grid1d", num_shards=4,
                             num_partitions=32)
        for cut in index.plan.cuts:
            for query in (
                Query.stabbing(int(cut)),
                Query(int(cut) - 1, int(cut)),
                Query(int(cut) - 5, int(cut) + 5),
            ):
                assert index.query_count(query) == len(
                    set(synthetic_collection.query_ids(query).tolist())
                ), query


class TestBoundedDeletes:
    def test_delete_probes_only_owning_shards(self, synthetic_collection):
        index = ShardedIndex(synthetic_collection, backend="naive", num_shards=4)
        probed = []
        for shard_id, shard in enumerate(index.shards):
            original = shard.delete

            def spy(interval_id, _original=original, _shard_id=shard_id):
                probed.append(_shard_id)
                return _original(interval_id)

            shard.delete = spy
        # an interval strictly inside shard 2's range: only shard 2 is probed
        cuts = index.plan.cuts
        victim = next(
            s for s in synthetic_collection if cuts[1] < s.start and s.end < cuts[2]
        )
        assert index.delete(victim.id)
        first, last = index.plan.shard_range(victim.start, victim.end)
        assert (first, last) == (2, 2)
        assert probed == [2]

    def test_unknown_id_probes_no_shard(self, synthetic_collection):
        index = ShardedIndex(synthetic_collection, backend="naive", num_shards=4)
        probed = []
        for shard in index.shards:
            shard.delete = lambda interval_id: probed.append(interval_id)
        assert index.delete(123_456_789) is False
        assert probed == []

    def test_delete_after_insert_probes_owning_shards(self, synthetic_collection):
        index = ShardedIndex(
            synthetic_collection, backend="hintm_hybrid", num_shards=4, num_bits=7
        )
        cut = index.plan.cuts[0]
        spanning = Interval(7_000_000, cut - 3, cut + 3)
        index.insert(spanning)
        assert index.delete(7_000_000)
        assert not index.delete(7_000_000)  # second delete: locator already empty


class TestPickleAndSharedMemory:
    def test_interval_and_query_round_trip(self):
        interval = Interval(7, 3, 12)
        query = Query(1, 9)
        assert pickle.loads(pickle.dumps(interval)) == interval
        assert pickle.loads(pickle.dumps(query)) == query

    def test_collection_round_trip(self, synthetic_collection):
        clone = pickle.loads(pickle.dumps(synthetic_collection))
        assert np.array_equal(clone.ids, synthetic_collection.ids)
        assert np.array_equal(clone.starts, synthetic_collection.starts)
        assert np.array_equal(clone.ends, synthetic_collection.ends)

    @pytest.mark.skipif(not HAS_SHARED_MEMORY, reason="no multiprocessing.shared_memory")
    def test_shared_memory_round_trip(self, synthetic_collection):
        buffer = SharedCollectionBuffer(synthetic_collection)
        try:
            assert np.array_equal(buffer.collection.ids, synthetic_collection.ids)
            # the handle is tiny no matter the collection size
            assert len(pickle.dumps(buffer.handle)) < 256
            attached, shm = attach_shared_collection(
                pickle.loads(pickle.dumps(buffer.handle))
            )
            try:
                assert np.array_equal(attached.ids, synthetic_collection.ids)
                assert np.array_equal(attached.starts, synthetic_collection.starts)
                assert np.array_equal(attached.ends, synthetic_collection.ends)
            finally:
                shm.close()
        finally:
            buffer.unlink()
            buffer.unlink()  # idempotent

    def test_sharded_index_publishes_shared_columns(self, synthetic_collection):
        if not HAS_SHARED_MEMORY:
            pytest.skip("no multiprocessing.shared_memory")
        with ProcessExecutor(2) as executor:
            index = ShardedIndex(
                synthetic_collection, backend="naive", num_shards=4, executor=executor
            )
            assert index._shared is not None
            spec = index._residency_spec(index._epoch)
            assert spec.handle is not None
            # the snapshot is part of the index's reported footprint
            assert index.memory_bytes() >= index._shared.nbytes
            index.close()
            assert index._shared is None


class TestExecutorLifecycle:
    def test_store_closes_executor_it_created(self, synthetic_collection):
        store = ShardedStore.open(
            synthetic_collection, "naive", num_shards=2, executor="processes", workers=2
        )
        executor = store.index.executor
        store.run_batch([Query(0, 10**6)])
        assert executor._pool is not None
        store.close()
        assert executor._pool is None

    def test_store_leaves_borrowed_executor_running(self, synthetic_collection, pool):
        with ShardedStore.open(
            synthetic_collection, "naive", num_shards=2, executor=pool
        ) as store:
            store.run_batch([Query(0, 10**6)])
        assert pool._pool is not None  # still usable by other stores

    def test_batches_after_close_fall_back_locally(self, synthetic_collection, rng):
        """A closed store (snapshot unlinked) still answers, in-process."""
        store = ShardedStore.open(
            synthetic_collection, "naive", num_shards=4, executor="processes", workers=2
        )
        queries = _workload(synthetic_collection, rng, count=6)
        store.run_batch(queries)
        store.close()
        assert not store.index._process_fanout_ready()
        batch = store.run_batch(queries)
        for query, ids in zip(queries, batch.ids):
            assert sorted(ids) == sorted(synthetic_collection.query_ids(query).tolist())

    def test_legacy_workers_instance_is_not_owned(self, synthetic_collection, pool):
        """An executor instance passed through the legacy workers= parameter
        belongs to the caller -- closing the store must not close it."""
        store = ShardedStore.open(synthetic_collection, "naive", num_shards=2, workers=pool)
        assert store.index.executor is pool
        store.run_batch([Query(0, 10**6)])
        store.close()
        assert pool._pool is not None
        plain = IntervalStore.open(synthetic_collection, "naive", workers=pool)
        plain.close()
        assert pool._pool is not None

    def test_custom_executor_subclass_still_fans_out(self, synthetic_collection, rng):
        """query_batch chunks over any in-process Executor, not just threads."""
        from repro.engine import Executor

        class Recording(Executor):
            name = "recording"

            def __init__(self):
                self.calls = 0

            @property
            def workers(self):
                return 3

            def map(self, fn, items):
                self.calls += 1
                return [fn(item) for item in items]

        executor = Recording()
        store = ShardedStore.open(
            synthetic_collection, "naive", num_shards=2, executor=executor
        )
        before = executor.calls  # the shard build already used it
        queries = _workload(synthetic_collection, rng, count=9)
        batch = store.run_batch(queries)
        assert executor.calls == before + 1
        for query, ids in zip(queries, batch.ids):
            assert sorted(ids) == sorted(synthetic_collection.query_ids(query).tolist())

    def test_plain_store_respects_ownership(self, synthetic_collection):
        borrowed = ThreadedExecutor(2)
        with IntervalStore.open(synthetic_collection, "naive", workers=borrowed) as store:
            store.run_batch([Query(0, 10**6), Query(5, 50)])
        assert borrowed._pool is not None
        borrowed.close()
        owned = IntervalStore.open(synthetic_collection, "naive", workers=2)
        owned.run_batch([Query(0, 10**6), Query(5, 50)])
        executor = owned.executor
        owned.close()
        assert executor._pool is None
