"""Acceptance benchmark for the process-parallel sharded execution layer.

The PR's bar, on a 100k-interval TAXIS-scale collection with a 1k-query
workload:

* the :class:`~repro.engine.executor.ProcessExecutor` (worker-resident
  shards over shared-memory columns) beats the serial and thread-pool
  executors on the same multi-shard ``hintm`` batch workload -- by >= 2x
  over serial when enough cores are available (the HINT^m family is
  pure-Python, so only processes sidestep the GIL; on a 1-2 core host the
  workers time-slice one another and no executor can win by 2x);
* multi-shard ``query_count`` answers through home-shard sums -- identical
  to the materialise-and-dedup oracle and never building an id list.
"""

import os

import pytest

from repro.bench.experiments import process_scaling
from repro.core.interval import Query
from repro.datasets.real_like import REAL_DATASET_PROFILES, generate_real_like
from repro.engine import ShardedIndex, ShardedStore, create_index
from repro.queries.generator import QueryWorkloadConfig, generate_queries

CARDINALITY = 100_000
NUM_QUERIES = 1_000


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def workload():
    collection = generate_real_like(
        REAL_DATASET_PROFILES["TAXIS"], cardinality=CARDINALITY, seed=7
    )
    queries = generate_queries(
        collection, QueryWorkloadConfig(count=NUM_QUERIES, extent_fraction=0.001, seed=7)
    )
    return collection, queries


@pytest.fixture(scope="module")
def scaling_rows(workload):
    collection, _ = workload
    result = process_scaling(
        collection,
        num_queries=NUM_QUERIES,
        backends=("hintm",),
        repeats=3,
    )
    return result


def test_process_executor_beats_serial_on_multi_shard_hintm(scaling_rows):
    cores = _available_cores()
    by_key = {(r["num_shards"], r["executor"]): r for r in scaling_rows["batch"]}
    serial = by_key[(4, "serial")]
    threads = by_key[(4, "threads")]
    processes = by_key[(4, "processes")]
    ratio_serial = processes["throughput"] / serial["throughput"]
    ratio_threads = processes["throughput"] / threads["throughput"]
    if cores < 2:
        pytest.skip(
            f"ProcessExecutor reached {ratio_serial:.2f}x over serial / "
            f"{ratio_threads:.2f}x over threads on the same K=4 hintm workload, "
            f"but only {cores} core is available -- worker processes time-slice "
            "one another, so the >= 2x multi-core bar cannot be exercised here"
        )
    # hintm is pure Python: threads stay GIL-bound, processes genuinely
    # parallelise.  The 2x bar needs enough cores to host the workers; on a
    # 2-3 core host perfect scaling is 2x minus transport, so require 1.4x.
    threshold = 2.0 if cores >= 4 else 1.4
    assert ratio_serial >= threshold, (
        f"ProcessExecutor reached only {ratio_serial:.2f}x over SerialExecutor "
        f"on the K=4 hintm workload with {cores} cores "
        f"({processes['throughput']:,.0f} vs {serial['throughput']:,.0f} q/s)"
    )
    assert processes["throughput"] > threads["throughput"], (
        f"ProcessExecutor ({processes['throughput']:,.0f} q/s) did not beat the "
        f"GIL-bound ThreadedExecutor ({threads['throughput']:,.0f} q/s)"
    )


def test_process_executor_identical_to_unsharded_at_scale(workload):
    """The equivalence half of the acceptance bar, at full scale."""
    collection, queries = workload
    unsharded = create_index("naive", collection)
    with ShardedStore.open(
        collection, "naive", num_shards=4, executor="processes", workers=2
    ) as store:
        sample = queries[:: max(1, len(queries) // 100)]  # ~100 queries
        batch = store.run_batch(sample)
        for query, ids in zip(sample, batch.ids):
            assert sorted(ids) == sorted(unsharded.query(Query(query.start, query.end)))


def test_multi_shard_count_never_materialises_at_scale(workload, monkeypatch):
    """Counting a duplication-heavy multi-shard workload touches no id lists."""
    collection, _ = workload
    index = ShardedIndex(collection, backend="hintm_opt", num_shards=4)
    lo, hi = collection.span()
    step = max(1, (hi - lo) // 50)
    broad = [Query(lo + i * step, lo + i * step + 3 * step) for i in range(40)]
    oracle = [len(set(index.query(q))) for q in broad]

    def _no_materialise(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("query_count materialised an id list")

    before = dict(index.count_ops)
    monkeypatch.setattr(type(index), "query", _no_materialise)
    for shard in index.shards:
        monkeypatch.setattr(type(shard), "query", _no_materialise, raising=False)
    counts = [index.query_count(q) for q in broad]
    monkeypatch.undo()
    assert counts == oracle
    multi_shard = sum(
        1
        for q in broad
        if index.plan.shard_range(q.start, q.end)[0]
        < index.plan.shard_range(q.start, q.end)[1]
    )
    assert multi_shard > 0
    assert index.count_ops["home_shard"] - before["home_shard"] == multi_shard
    index.close()
