"""Property-based tests (hypothesis) for the core index invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import Grid1D, IntervalTree, NaiveIndex, PeriodIndex, TimelineIndex
from repro.core.interval import Interval, IntervalCollection, Query
from repro.hint import ComparisonFreeHINT, HINTm, OptimizedHINTm, SubdividedHINTm

# strategy: a list of intervals over a small discrete domain plus a query;
# small domains maximise boundary collisions (partition edges, equal
# endpoints), which is where index bugs live
DOMAIN_MAX = 255

intervals_strategy = st.lists(
    st.tuples(st.integers(0, DOMAIN_MAX), st.integers(0, DOMAIN_MAX)).map(
        lambda t: (min(t), max(t))
    ),
    min_size=1,
    max_size=60,
)
query_strategy = st.tuples(st.integers(0, DOMAIN_MAX), st.integers(0, DOMAIN_MAX)).map(
    lambda t: Query(min(t), max(t))
)


def _collection(pairs):
    return IntervalCollection.from_pairs(pairs)


def _oracle_result(pairs, query):
    return sorted(
        i for i, (start, end) in enumerate(pairs) if start <= query.end and query.start <= end
    )


common_settings = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@common_settings
@given(pairs=intervals_strategy, query=query_strategy, m=st.integers(2, 8))
def test_hintm_bottom_up_matches_oracle(pairs, query, m):
    index = HINTm(_collection(pairs), num_bits=m)
    assert sorted(index.query(query)) == _oracle_result(pairs, query)


@common_settings
@given(pairs=intervals_strategy, query=query_strategy, m=st.integers(2, 8))
def test_hintm_top_down_matches_oracle(pairs, query, m):
    index = HINTm(_collection(pairs), num_bits=m, evaluation="top_down")
    assert sorted(index.query(query)) == _oracle_result(pairs, query)


@common_settings
@given(pairs=intervals_strategy, query=query_strategy, m=st.integers(2, 8))
def test_subdivided_matches_oracle(pairs, query, m):
    index = SubdividedHINTm(_collection(pairs), num_bits=m)
    assert sorted(index.query(query)) == _oracle_result(pairs, query)


@common_settings
@given(
    pairs=intervals_strategy,
    query=query_strategy,
    m=st.integers(2, 8),
    sparse=st.booleans(),
    columnar=st.booleans(),
)
def test_optimized_matches_oracle(pairs, query, m, sparse, columnar):
    index = OptimizedHINTm(
        _collection(pairs), num_bits=m, sparse_directory=sparse, columnar=columnar
    )
    assert sorted(index.query(query)) == _oracle_result(pairs, query)


@common_settings
@given(pairs=intervals_strategy, query=query_strategy)
def test_comparison_free_hint_matches_oracle(pairs, query):
    index = ComparisonFreeHINT(_collection(pairs), num_bits=8)
    assert sorted(index.query(query)) == _oracle_result(pairs, query)


@common_settings
@given(pairs=intervals_strategy, query=query_strategy)
def test_interval_tree_matches_oracle(pairs, query):
    index = IntervalTree(_collection(pairs))
    assert sorted(index.query(query)) == _oracle_result(pairs, query)


@common_settings
@given(pairs=intervals_strategy, query=query_strategy, partitions=st.integers(1, 40))
def test_grid_matches_oracle(pairs, query, partitions):
    index = Grid1D(_collection(pairs), num_partitions=partitions)
    assert sorted(index.query(query)) == _oracle_result(pairs, query)


@common_settings
@given(pairs=intervals_strategy, query=query_strategy, checkpoints=st.integers(1, 20))
def test_timeline_matches_oracle(pairs, query, checkpoints):
    index = TimelineIndex(_collection(pairs), num_checkpoints=checkpoints)
    assert sorted(index.query(query)) == _oracle_result(pairs, query)


@common_settings
@given(
    pairs=intervals_strategy,
    query=query_strategy,
    coarse=st.integers(1, 10),
    levels=st.integers(1, 4),
)
def test_period_index_matches_oracle(pairs, query, coarse, levels):
    index = PeriodIndex(_collection(pairs), num_coarse_partitions=coarse, num_levels=levels)
    assert sorted(index.query(query)) == _oracle_result(pairs, query)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    pairs=intervals_strategy,
    extra=st.lists(
        st.tuples(st.integers(0, DOMAIN_MAX), st.integers(0, DOMAIN_MAX)).map(
            lambda t: (min(t), max(t))
        ),
        max_size=15,
    ),
    deletions=st.lists(st.integers(0, 74), max_size=10),
    query=query_strategy,
    m=st.integers(3, 8),
)
def test_update_sequences_match_oracle(pairs, extra, deletions, query, m):
    """Random insert/delete sequences keep HINT^m equivalent to the oracle."""
    collection = _collection(pairs)
    hint = SubdividedHINTm(collection, num_bits=m)
    oracle = NaiveIndex.build(collection)
    next_id = len(pairs)
    for start, end in extra:
        interval = Interval(next_id, start, end)
        hint.insert(interval)
        oracle.insert(interval)
        next_id += 1
    for victim in deletions:
        assert hint.delete(victim) == oracle.delete(victim)
    assert sorted(hint.query(query)) == sorted(oracle.query(query))


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(pairs=intervals_strategy, query=query_strategy, m=st.integers(2, 8))
def test_no_duplicate_results(pairs, query, m):
    """The originals/replicas split never produces duplicates (Section 3.1)."""
    for index in (
        HINTm(_collection(pairs), num_bits=m),
        SubdividedHINTm(_collection(pairs), num_bits=m),
        OptimizedHINTm(_collection(pairs), num_bits=m),
    ):
        results = index.query(query)
        assert len(results) == len(set(results))


@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(pairs=intervals_strategy, m=st.integers(2, 8))
def test_replication_factor_within_theoretical_bound(pairs, m):
    """Each interval is assigned to at most two partitions per level."""
    index = HINTm(_collection(pairs), num_bits=m)
    assert 1.0 <= index.replication_factor <= 2.0 * (m + 1)
