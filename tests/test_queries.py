"""Unit tests for query and workload generators (repro.queries)."""

import numpy as np
import pytest

from repro.core.interval import Interval, IntervalCollection
from repro.queries.generator import (
    QueryWorkloadConfig,
    generate_queries,
    generate_stabbing_queries,
)
from repro.queries.workload import Operation, generate_mixed_workload


class TestQueryGenerator:
    def test_count_and_extent(self, synthetic_collection):
        queries = generate_queries(
            synthetic_collection, QueryWorkloadConfig(count=50, extent_fraction=0.01, seed=1)
        )
        assert len(queries) == 50
        lo, hi = synthetic_collection.span()
        expected_extent = round(0.01 * (hi - lo))
        for q in queries:
            assert lo <= q.start <= hi
            assert q.end <= hi
            assert q.extent <= expected_extent

    def test_queries_within_domain(self, synthetic_collection):
        queries = generate_queries(
            synthetic_collection, QueryWorkloadConfig(count=30, extent_fraction=0.5, seed=2)
        )
        lo, hi = synthetic_collection.span()
        assert all(lo <= q.start and q.end <= hi for q in queries)

    def test_stabbing_queries(self, synthetic_collection):
        queries = generate_stabbing_queries(synthetic_collection, count=25, seed=3)
        assert len(queries) == 25
        assert all(q.is_stabbing for q in queries)

    def test_data_placement_follows_data(self):
        """With placement="data", query starts coincide with interval starts."""
        data = IntervalCollection.from_pairs([(100 + i, 110 + i) for i in range(50)])
        queries = generate_queries(
            data, QueryWorkloadConfig(count=40, extent_fraction=0.0, placement="data", seed=4)
        )
        starts = set(data.starts.tolist())
        assert all(q.start in starts for q in queries)

    def test_deterministic(self, synthetic_collection):
        config = QueryWorkloadConfig(count=20, extent_fraction=0.02, seed=55)
        a = generate_queries(synthetic_collection, config)
        b = generate_queries(synthetic_collection, config)
        assert a == b

    def test_zero_count(self, synthetic_collection):
        assert generate_queries(synthetic_collection, QueryWorkloadConfig(count=0)) == []

    def test_empty_collection(self):
        queries = generate_queries(IntervalCollection.empty(), QueryWorkloadConfig(count=5))
        assert len(queries) == 5


class TestMixedWorkload:
    def test_counts(self, synthetic_collection):
        workload = generate_mixed_workload(
            synthetic_collection,
            num_queries=40,
            num_insertions=30,
            num_deletions=10,
            seed=6,
        )
        counts = workload.counts
        assert counts[Operation.QUERY] == 40
        assert counts[Operation.INSERT] == 30
        assert counts[Operation.DELETE] == 10

    def test_preload_fraction(self, synthetic_collection):
        workload = generate_mixed_workload(synthetic_collection, preload_fraction=0.9, seed=6)
        assert len(workload.preload) == int(0.9 * len(synthetic_collection))

    def test_insertions_come_from_held_out_data(self, synthetic_collection):
        workload = generate_mixed_workload(
            synthetic_collection, num_insertions=50, num_queries=5, num_deletions=5, seed=7
        )
        preload_ids = set(workload.preload.ids.tolist())
        inserted = [p for op, p in workload.operations if op is Operation.INSERT]
        assert all(isinstance(p, Interval) for p in inserted)
        assert all(p.id not in preload_ids for p in inserted)

    def test_deletions_target_preloaded_ids(self, synthetic_collection):
        workload = generate_mixed_workload(
            synthetic_collection, num_queries=5, num_insertions=5, num_deletions=20, seed=8
        )
        preload_ids = set(workload.preload.ids.tolist())
        deleted = [p for op, p in workload.operations if op is Operation.DELETE]
        assert all(p in preload_ids for p in deleted)
        assert len(set(deleted)) == len(deleted)

    def test_insertions_capped_by_held_out_size(self, synthetic_collection):
        workload = generate_mixed_workload(
            synthetic_collection,
            num_insertions=10 ** 6,
            num_queries=1,
            num_deletions=1,
            seed=9,
        )
        held_out = len(synthetic_collection) - len(workload.preload)
        assert workload.counts[Operation.INSERT] == held_out

    def test_deterministic(self, synthetic_collection):
        a = generate_mixed_workload(synthetic_collection, seed=10)
        b = generate_mixed_workload(synthetic_collection, seed=10)
        assert [op for op, _ in a.operations] == [op for op, _ in b.operations]
