"""Replicated shards: routing, failover, healing, update propagation."""

import threading

import pytest

from repro.core.interval import Interval, IntervalCollection, Query
from repro.engine import IntervalStore
from repro.engine.replication import ROUTING_POLICIES, ShardReplicaSet
from repro.engine.sharded import ShardedIndex, ShardedStore
from repro.queries.generator import QueryWorkloadConfig, generate_queries


def _collection(n=400, seed=3):
    import numpy as np

    rng = np.random.default_rng(seed)
    starts = rng.integers(0, 10_000, n)
    ends = starts + rng.integers(0, 500, n)
    return IntervalCollection.from_pairs(
        [(int(s), int(e)) for s, e in zip(starts, ends)]
    )


def _oracle(collection, query):
    return {
        int(i)
        for i, s, e in zip(collection.ids, collection.starts, collection.ends)
        if s <= query.end and query.start <= e
    }


class _Exploding:
    """Wraps a replica index; raises on query paths after arm()."""

    def __init__(self, inner):
        self._inner = inner
        self.armed = False

    def arm(self):
        self.armed = True

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def _boom(self):
        raise OSError("injected replica failure")

    def query(self, query):
        if self.armed:
            self._boom()
        return self._inner.query(query)

    def query_count(self, query):
        if self.armed:
            self._boom()
        return self._inner.query_count(query)

    def query_exists(self, query):
        if self.armed:
            self._boom()
        return self._inner.query_exists(query)


# --------------------------------------------------------------------------- #
# ShardReplicaSet unit behaviour
# --------------------------------------------------------------------------- #
class TestShardReplicaSet:
    def _set(self, factor=3, routing="round_robin"):
        built = []

        def build():
            built.append(object())
            return built[-1]

        return ShardReplicaSet(0, factor, build=build, routing=routing), built

    def test_factor_and_routing_validation(self):
        with pytest.raises(ValueError, match="replication factor"):
            ShardReplicaSet(0, 0, build=object)
        with pytest.raises(ValueError, match="routing"):
            ShardReplicaSet(0, 2, build=object, routing="random")

    def test_round_robin_cycles_all_replicas(self):
        replica_set, _ = self._set(factor=3)
        seen = {replica_set.select()[0] for _ in range(9)}
        assert seen == {0, 1, 2}

    def test_least_loaded_prefers_idle_replica(self):
        replica_set, _ = self._set(factor=2, routing="least_loaded")
        busy_id, _ = replica_set.acquire()  # held in flight
        other_id, _ = replica_set.select()
        assert other_id != busy_id
        replica_set.release(busy_id)

    def test_lazy_build_is_cached_per_slot(self):
        replica_set, built = self._set(factor=2)
        first = replica_set.primary()
        assert replica_set.primary() is first
        replica_set.ensure_all()
        assert len(built) == 2

    def test_mark_failed_removes_from_rotation(self):
        replica_set, _ = self._set(factor=2)
        assert replica_set.mark_failed(1) == 1
        assert replica_set.failed_ids() == [1]
        assert all(replica_set.select()[0] == 0 for _ in range(5))

    def test_all_failed_raises_with_guidance(self):
        replica_set, _ = self._set(factor=2)
        replica_set.mark_failed(0)
        replica_set.mark_failed(1)
        with pytest.raises(RuntimeError, match="all 2 replicas"):
            replica_set.select()

    def test_install_heals_a_failed_slot(self):
        replica_set, _ = self._set(factor=2)
        replica_set.mark_failed(1)
        healed = object()
        replica_set.install(1, healed)
        assert replica_set.failed_ids() == []
        assert healed in replica_set.built()

    def test_ensure_all_skips_failed_slots(self):
        replica_set, built = self._set(factor=3)
        replica_set.mark_failed(1)
        replicas = replica_set.ensure_all()
        assert len(replicas) == 2

    def test_routing_policy_registry_names(self):
        assert tuple(name for name, _ in ROUTING_POLICIES) == (
            "round_robin",
            "least_loaded",
        )


# --------------------------------------------------------------------------- #
# replicated sharded index: correctness and failover
# --------------------------------------------------------------------------- #
class TestReplicatedShardedIndex:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    @pytest.mark.parametrize("routing", ["round_robin", "least_loaded"])
    def test_replicated_queries_match_oracle(self, num_shards, routing):
        collection = _collection()
        index = ShardedIndex(
            collection,
            backend="hintm_opt",
            num_shards=num_shards,
            replication_factor=2,
            routing=routing,
        )
        queries = generate_queries(
            collection, QueryWorkloadConfig(count=30, extent_fraction=0.05, seed=5)
        )
        for query in queries:
            expected = _oracle(collection, query)
            assert set(index.query(query)) == expected
            assert index.query_count(query) == len(expected)
            assert index.query_exists(query) == bool(expected)
        index.close()

    def test_replication_factor_validation(self):
        with pytest.raises(ValueError, match="replication_factor"):
            ShardedIndex(_collection(), replication_factor=0)

    def test_replication_state_surfaced(self):
        index = ShardedIndex(_collection(), num_shards=2, replication_factor=3)
        assert index.replication_factor == 3
        assert index.routing == "round_robin"
        health = index.replica_health()
        assert len(health) == index.num_shards
        assert all(len(row) == 3 and all(row) for row in health)
        state = index.maintenance_state()
        assert state["replication_factor"] == 3
        assert state["failed_replicas"] == []
        index.close()

    def test_kill_replica_keeps_answers_correct(self):
        collection = _collection()
        index = ShardedIndex(
            collection, backend="hintm_opt", num_shards=2, replication_factor=2
        )
        query = Query(0, 10_500)  # spans both shards
        expected = _oracle(collection, query)
        # warm all replicas into the rotation, then kill one per shard
        for _ in range(4):
            assert set(index.query(query)) == expected
        assert index.kill_replica(0, replica_id=0) == 1
        assert index.kill_replica(1, replica_id=1) == 1
        assert index.failed_replicas() == [(0, 0), (1, 1)]
        for _ in range(4):
            assert set(index.query(query)) == expected
            assert index.query_count(query) == len(expected)
        _, stats = index.query_with_stats(query)
        assert stats.extra["replicas_failed"] == 2.0
        index.close()

    def test_failover_marks_raising_replica_and_retries(self):
        collection = _collection()
        index = ShardedIndex(
            collection, backend="hintm_opt", num_shards=1, replication_factor=2
        )
        query = Query(0, 20_000)
        expected = _oracle(collection, query)
        replica_set = index._epoch.replica_sets[0]
        replica_set.ensure_all()
        exploding = _Exploding(replica_set._replicas[1])
        replica_set._replicas[1] = exploding
        exploding.arm()
        # round-robin will route onto the exploding replica within two probes;
        # the failover must answer correctly and take the replica out
        for _ in range(4):
            assert set(index.query(query)) == expected
        assert index.failed_replicas() == [(0, 1)]
        failures = index.recent_failures()
        assert failures and failures[-1].shard_id == 0
        assert "injected replica failure" in failures[-1].error
        index.close()

    def test_semantic_errors_do_not_trigger_failover(self):
        collection = _collection()
        index = ShardedIndex(
            collection, backend="hintm_opt", num_shards=1, replication_factor=2
        )
        from repro.core.errors import InvalidQueryError

        with pytest.raises(InvalidQueryError):
            index.query(Query(10, 5))
        assert index.failed_replicas() == []
        index.close()

    def test_updates_reach_every_replica(self):
        collection = _collection()
        index = ShardedIndex(
            collection, backend="hintm_hybrid", num_shards=2, replication_factor=2
        )
        fresh = Interval(10_000, 100, 9_900)  # spans both shards
        index.insert(fresh)
        assert index.delete(3)
        query = Query(0, 10_500)
        expected = (_oracle(collection, query) | {10_000}) - {3}
        # kill each replica in turn: the survivor must hold the updates too
        assert set(index.query(query)) == expected
        index.kill_replica(0, replica_id=0)
        index.kill_replica(1, replica_id=0)
        assert set(index.query(query)) == expected
        index.close()

    def test_rebuild_failed_replicas_heals_with_live_contents(self):
        collection = _collection()
        index = ShardedIndex(
            collection, backend="hintm_hybrid", num_shards=2, replication_factor=2
        )
        fresh = Interval(10_000, 100, 9_900)
        index.insert(fresh)
        index.kill_replica(0, replica_id=1)
        healed = index.rebuild_failed_replicas()
        assert healed == [(0, 1)]
        assert index.failed_replicas() == []
        # drive enough probes to hit the healed replica; updates must be there
        query = Query(0, 10_500)
        expected = _oracle(collection, query) | {10_000}
        for _ in range(6):
            assert set(index.query(query)) == expected
        index.close()

    def test_maintenance_pass_heals_failed_replicas(self):
        collection = _collection()
        store = ShardedStore.open(
            collection, "hintm_hybrid", num_shards=2, replication_factor=2
        )
        store.index.kill_replica(1, replica_id=0)
        report = store.maintain()
        assert report.replicas_rebuilt == [(1, 0)]
        assert "healed replicas" in report.summary()
        assert store.index.failed_replicas() == []
        store.close()

    def test_repartition_restores_full_replication(self):
        collection = _collection()
        index = ShardedIndex(
            collection, backend="hintm_hybrid", num_shards=2, replication_factor=2
        )
        index.insert(Interval(10_000, 9_000, 9_100))
        index.kill_replica(0, replica_id=0)
        assert index.repartition(strategy="balanced")
        assert index.failed_replicas() == []
        assert all(all(row) for row in index.replica_health())
        index.close()

    def test_concurrent_replicated_queries_stay_correct(self):
        collection = _collection(n=600)
        index = ShardedIndex(
            collection,
            backend="hintm_opt",
            num_shards=2,
            replication_factor=2,
            routing="least_loaded",
        )
        queries = generate_queries(
            collection, QueryWorkloadConfig(count=20, extent_fraction=0.05, seed=11)
        )
        expected = {q: _oracle(collection, q) for q in queries}
        failures = []

        def worker():
            try:
                for _ in range(10):
                    for query in queries:
                        if set(index.query(query)) != expected[query]:
                            failures.append(query)
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        index.close()


# --------------------------------------------------------------------------- #
# store-level plumbing
# --------------------------------------------------------------------------- #
class TestReplicatedStore:
    def test_open_with_replication_forces_sharded_store(self):
        store = IntervalStore.open(
            _collection(), "hintm_opt", num_shards=1, replication_factor=2
        )
        assert isinstance(store, ShardedStore)
        assert store.index.replication_factor == 2
        store.close()

    def test_open_rejects_bad_replication(self):
        with pytest.raises(ValueError, match="replication_factor"):
            IntervalStore.open(_collection(), replication_factor=0)

    def test_result_generation_moves_on_updates_and_epochs(self):
        store = IntervalStore.open(
            _collection(), "hintm_hybrid", num_shards=2, replication_factor=2
        )
        before = store.result_generation()
        store.insert(Interval(10_000, 10, 20))
        after_insert = store.result_generation()
        assert after_insert > before
        store.delete(10_000)
        after_delete = store.result_generation()
        assert after_delete > after_insert
        if store.index.repartition(strategy="balanced"):
            assert store.result_generation() > after_delete
        store.close()

    def test_plain_store_generation_tracks_store_updates(self):
        store = IntervalStore.from_pairs([(1, 5), (3, 9)], backend="hintm_hybrid")
        before = store.result_generation()
        store.insert(Interval(7, 2, 4))
        assert store.result_generation() == before + 1
        assert store.delete(7)
        assert store.result_generation() == before + 2
        assert not store.delete(12345)  # a miss does not move the generation
        assert store.result_generation() == before + 2


# --------------------------------------------------------------------------- #
# worker-pool failover (process fan-out degrading to in-process execution)
# --------------------------------------------------------------------------- #
class TestWorkerPoolFailover:
    def _queries(self, collection, count=8):
        return generate_queries(
            collection, QueryWorkloadConfig(count=count, extent_fraction=0.2, seed=7)
        )

    @pytest.mark.skipif(
        not __import__("repro.core.interval", fromlist=["HAS_SHARED_MEMORY"]).HAS_SHARED_MEMORY,
        reason="no multiprocessing.shared_memory",
    )
    def test_broken_pool_fails_over_in_process(self):
        from repro.engine.executor import ProcessExecutor

        class _BrokenPool(ProcessExecutor):
            """A process executor whose pooled submits always die -- even
            after a respawn, so every worker path is exhausted."""

            def __init__(self):
                super().__init__(workers=2)
                self.broken_submits = 0
                self.respawns = 0

            def submit(self, fn, item):
                self.broken_submits += 1
                raise BrokenPipeError("worker died mid-batch")

            def respawn(self, token=None):
                self.respawns += 1
                super().respawn(token)

        collection = _collection(n=500)
        executor = _BrokenPool()
        index = ShardedIndex(
            collection, backend="hintm_opt", num_shards=4, executor=executor
        )
        try:
            queries = self._queries(collection)
            assert index._process_fanout_ready()
            answers = index.query_batch(queries)
            # the batch answered correctly despite the dead pool...
            for query, ids in zip(queries, answers):
                assert set(ids) == _oracle(collection, query)
            assert executor.broken_submits > 0
            # ...per-worker healing respawned the pool and retried first...
            assert executor.respawns == 1
            assert index.kernel_retries > 0
            # ...the failure is recorded as a pool-level replica failure...
            failures = index.recent_failures()
            assert failures and failures[-1].shard_id == -1
            assert "worker died" in failures[-1].error
            # ...and only once the retry round died too is fan-out disabled
            # (no retry storm on a permanently dead pool)
            assert not index._process_fanout_ready()
            submits = executor.broken_submits
            index.query_batch(queries)
            assert executor.broken_submits == submits
            # a snapshot refresh heals fan-out (fresh pool, fresh residency)
            assert index.refresh_snapshot()
            assert index._process_fanout_ready()
        finally:
            index.close()
            executor.close()


class TestKilledSoleReplica:
    """A killed sole replica goes dark -- never silently stale (regression)."""

    def test_killed_unreplicated_shard_raises_until_healed(self):
        collection = _collection()
        index = ShardedIndex(
            collection, backend="hintm_hybrid", num_shards=4, replication_factor=1
        )
        lo, hi = collection.span()
        fresh = Interval(10_000, lo, lo + 10)  # lands in shard 0
        index.insert(fresh)
        query = Query(lo, lo + 50)
        assert 10_000 in index.query(query)
        index.kill_replica(0, replica_id=0)
        # the shard must not resurrect itself from the pre-insert epoch
        # source (which would silently drop the insert) -- it goes dark
        with pytest.raises(RuntimeError, match="must heal"):
            index.query(query)
        healed = index.rebuild_failed_replicas()
        assert healed == [(0, 0)]
        assert 10_000 in index.query(query)  # the live rebuild has the insert
        index.close()


class TestAcquireFailover:
    """Failover covers the lazy build, not just the probe (regression)."""

    def test_failed_lazy_build_retries_next_replica(self):
        primary = object()
        builds = {"count": 0}

        def build():
            builds["count"] += 1
            raise MemoryError("replica build failed")

        replica_set = ShardReplicaSet(0, 2, build=build, primary=primary)
        # the round-robin pick lands on the unbuilt slot within two
        # acquires; its build blows up, the slot leaves rotation, and the
        # acquire answers from the healthy primary instead of propagating
        for _ in range(4):
            replica_id, index = replica_set.acquire()
            assert index is primary
            replica_set.release(replica_id)
        assert replica_set.failed_ids() == [1]
        assert builds["count"] == 1  # the dead slot is not retried forever

    def test_all_builds_failing_still_raises(self):
        def build():
            raise MemoryError("no replicas can build")

        replica_set = ShardReplicaSet(0, 2, build=build)
        with pytest.raises(RuntimeError, match="all 2 replicas"):
            replica_set.acquire()


class TestSelectRouting:
    def test_least_loaded_select_rotates_on_ties(self):
        # select() (the fluent shards_for path) tracks no in-flight load,
        # so every counter ties -- the pick must still rotate instead of
        # pinning all traffic to replica 0
        replica_set = ShardReplicaSet(
            0, 3, build=lambda: object(), routing="least_loaded"
        )
        seen = {replica_set.select()[0] for _ in range(9)}
        assert seen == {0, 1, 2}


class TestKillReplicaDegenerateGuard:
    def test_unreplicated_single_shard_kill_is_refused(self):
        # K == 1, R == 1 keeps no locator: the killed primary would be the
        # only record of absorbed updates, so no rebuild source would exist
        index = ShardedIndex(_collection(), num_shards=1, replication_factor=1)
        with pytest.raises(ValueError, match="no locator"):
            index.kill_replica(0, replica_id=0)
        index.close()

    def test_replicated_single_shard_kill_still_works(self):
        index = ShardedIndex(_collection(), num_shards=1, replication_factor=2)
        assert index.kill_replica(0, replica_id=0) == 1
        assert index.rebuild_failed_replicas() == [(0, 0)]
        index.close()


class TestEpochSourceRetention:
    def test_eager_unreplicated_install_drops_the_source(self):
        # nothing can lazily build in this configuration; pinning the build
        # collection for the index's lifetime would be dead memory
        index = ShardedIndex(_collection(), num_shards=4, replication_factor=1)
        assert index._epoch.source is None
        index.close()

    def test_replicated_install_keeps_the_source_for_lazy_builds(self):
        index = ShardedIndex(_collection(), num_shards=2, replication_factor=2)
        assert index._epoch.source is not None
        index.close()
