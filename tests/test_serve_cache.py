"""The invalidation-aware result cache: generation keying, LRU, stats."""

import threading

import pytest

from repro.serve.cache import ResultCache, normalize_query_key, resolve_cache


class TestNormalizeQueryKey:
    def test_kind_separates_result_shapes(self):
        assert normalize_query_key(1, 5, "ids") != normalize_query_key(1, 5, "count")

    def test_same_query_same_key(self):
        assert normalize_query_key(1, 5) == normalize_query_key(1, 5)


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        key = normalize_query_key(1, 5)
        assert cache.get(key, 0) is ResultCache.MISS
        cache.put(key, 0, [1, 2, 3])
        assert cache.get(key, 0) == [1, 2, 3]
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_generation_bump_invalidates_by_construction(self):
        cache = ResultCache(capacity=4)
        key = normalize_query_key(1, 5)
        cache.put(key, 7, "generation-7 answer")
        assert cache.get(key, 7) == "generation-7 answer"
        # an update moved the generation: the entry is dead, dropped, counted
        assert cache.get(key, 8) is ResultCache.MISS
        stats = cache.stats()
        assert stats.invalidated == 1
        assert stats.size == 0
        # refill at the new generation works as usual
        cache.put(key, 8, "generation-8 answer")
        assert cache.get(key, 8) == "generation-8 answer"

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 0, 1)
        cache.put("b", 0, 2)
        assert cache.get("a", 0) == 1  # refresh a; b becomes the LRU
        cache.put("c", 0, 3)
        assert cache.get("b", 0) is ResultCache.MISS
        assert cache.get("a", 0) == 1
        assert cache.stats().evictions == 1

    def test_capacity_zero_disables_caching(self):
        cache = ResultCache(capacity=0)
        assert not cache.enabled
        cache.put("a", 0, 1)
        assert len(cache) == 0
        assert cache.get("a", 0) is ResultCache.MISS

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            ResultCache(capacity=-1)

    def test_cached_falsy_values_are_not_misses(self):
        cache = ResultCache(capacity=4)
        cache.put("empty", 0, [])
        assert cache.get("empty", 0) == []

    def test_clear(self):
        cache = ResultCache(capacity=4)
        cache.put("a", 0, 1)
        cache.clear()
        assert len(cache) == 0

    def test_hit_rate(self):
        cache = ResultCache(capacity=4)
        assert cache.stats().hit_rate == 0.0
        cache.put("a", 0, 1)
        cache.get("a", 0)
        cache.get("b", 0)
        assert cache.stats().hit_rate == pytest.approx(0.5)

    def test_thread_safety_under_mixed_generations(self):
        cache = ResultCache(capacity=64)
        errors = []

        def worker(generation):
            try:
                for i in range(500):
                    key = normalize_query_key(i % 32, i % 32 + 5)
                    cache.put(key, generation, (generation, i))
                    value = cache.get(key, generation)
                    if value is not ResultCache.MISS and value[0] != generation:
                        errors.append(value)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(g,)) for g in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors


class TestResolveCache:
    def test_default_is_enabled(self):
        cache = resolve_cache(None)
        assert cache.enabled and cache.capacity == 1024

    def test_int_is_capacity(self):
        assert resolve_cache(16).capacity == 16
        assert not resolve_cache(0).enabled

    def test_instance_passes_through(self):
        cache = ResultCache(capacity=2)
        assert resolve_cache(cache) is cache

    def test_bad_specs_rejected(self):
        with pytest.raises(TypeError):
            resolve_cache(True)
        with pytest.raises(TypeError):
            resolve_cache("big")


class TestTtl:
    """Wall-clock bounds compose with (and trump) generation keying + SWR."""

    def _cache(self, **kwargs):
        clock = {"now": 0.0}
        cache = ResultCache(capacity=8, clock=lambda: clock["now"], **kwargs)
        return cache, clock

    def test_fresh_entry_hits_until_ttl(self):
        cache, clock = self._cache(ttl=10.0)
        cache.put("a", 0, "answer")
        clock["now"] = 9.9
        assert cache.get("a", 0) == "answer"
        clock["now"] = 10.1
        assert cache.get("a", 0) is ResultCache.MISS
        stats = cache.stats()
        assert stats.ttl_expired == 1
        assert stats.size == 0  # expired entries are dropped, not retained

    def test_refill_restarts_the_clock(self):
        cache, clock = self._cache(ttl=5.0)
        cache.put("a", 0, "v1")
        clock["now"] = 6.0
        assert cache.get("a", 0) is ResultCache.MISS
        cache.put("a", 0, "v2")
        clock["now"] = 10.0
        assert cache.get("a", 0) == "v2"

    def test_expired_entries_are_not_swr_eligible(self):
        # generation moved AND the entry aged out: TTL wins -- a
        # time-sensitive consumer never sees the stale body
        cache, clock = self._cache(ttl=5.0, stale_while_revalidate=True)
        cache.put("a", 0, "old")
        clock["now"] = 6.0
        assert cache.get("a", 1) is ResultCache.MISS
        assert cache.stats().ttl_expired == 1
        assert cache.stats().stale_served == 0

    def test_within_ttl_generation_keying_is_unchanged(self):
        cache, clock = self._cache(ttl=100.0)
        cache.put("a", 0, "old")
        clock["now"] = 1.0
        assert cache.get("a", 1) is ResultCache.MISS  # plain invalidation
        assert cache.stats().invalidated == 1
        assert cache.stats().ttl_expired == 0

    def test_no_ttl_means_no_expiry(self):
        cache, clock = self._cache()
        cache.put("a", 0, "forever")
        clock["now"] = 1e9
        assert cache.get("a", 0) == "forever"

    def test_ttl_validation(self):
        with pytest.raises(ValueError, match="ttl"):
            ResultCache(capacity=4, ttl=0)
