"""Durability across the serving tier: degraded mode, retries, resumption.

* an injected WAL IO error flips the store into degraded mode: updates
  answer 503, ``/health`` stays 200 but reports ``degraded`` (reads keep
  routing), ``/stats`` carries the flag and the WAL gauges;
* the client's bounded retry/backoff surfaces
  :class:`ServerUnavailableError` (a :class:`ReproError`) with the socket
  torn down, instead of a raw ``OSError`` -- and never auto-retries a
  non-idempotent update;
* ``poller_lag`` / ``slowest_poller_lag`` gauges reach ``/stats``;
* a ``StreamClient`` reconnecting after a server restart resumes from its
  last acked generation without ``resync_required`` when the checkpoint
  covers its generation.
"""

import pytest

from repro.core.errors import ReproError
from repro.core.interval import Interval, IntervalCollection
from repro.durability import faults
from repro.engine import IntervalStore
from repro.serve.client import (
    ServeClient,
    ServerOverloaded,
    ServerUnavailableError,
    StreamClient,
)
from repro.serve.server import start_server_thread


def _collection(n=100):
    return IntervalCollection.from_intervals(
        [Interval(i, i * 50, i * 50 + 30) for i in range(n)]
    )


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.injector.reset()
    yield
    faults.injector.reset()


@pytest.fixture()
def durable_served(tmp_path):
    store = IntervalStore.open(
        _collection(), "hintm_hybrid", wal_dir=str(tmp_path), fsync="always"
    )
    handle = start_server_thread(store)
    client = ServeClient(port=handle.port)
    yield store, handle, client
    client.close()
    handle.stop()
    store.close()


# ---------------------------------------------------------------------- #
# degraded mode over the wire
# ---------------------------------------------------------------------- #
class TestDegradedMode:
    def test_wal_failure_degrades_and_rejects_updates(self, durable_served):
        store, _, client = durable_served
        client.insert(1000, 10, 20)  # healthy first
        faults.injector.arm("append.before_write", action="io_error")
        with pytest.raises(ServerOverloaded):
            client.insert(1001, 30, 40)
        assert store.durability.degraded
        # degraded does not self-heal: the next update is refused too
        with pytest.raises(ServerOverloaded):
            client.delete(0)
        # the refused inserts must not have been applied
        assert 1001 not in set(client.query(0, 10**6)["ids"])

    def test_reads_keep_working_when_degraded(self, durable_served):
        store, _, client = durable_served
        faults.injector.arm("append.before_write", action="io_error")
        with pytest.raises(ServerOverloaded):
            client.insert(1001, 30, 40)
        response = client.query(0, 10**6)
        assert response["count"] == len(store)

    def test_health_reports_degraded_but_stays_200(self, durable_served):
        store, _, client = durable_served
        health = client.health()
        assert health["status"] == "ok"
        assert health["durability_degraded"] is False
        faults.injector.arm("append.before_write", action="io_error")
        with pytest.raises(ServerOverloaded):
            client.insert(1001, 30, 40)
        health = client.health()  # a 503 here would raise in the client
        assert health["status"] == "degraded"
        assert health["durability_degraded"] is True

    def test_stats_carry_wal_gauges_and_degraded_flag(self, durable_served):
        store, _, client = durable_served
        stats = client.stats()
        assert stats["durability_degraded"] is False
        wal = stats["durability"]
        assert wal["fsync_policy"] == "always"
        assert wal["wal_segments"] >= 1
        assert wal["wal_bytes"] > 0
        assert wal["last_checkpoint_generation"] >= 0
        faults.injector.arm("append.before_write", action="io_error")
        with pytest.raises(ServerOverloaded):
            client.insert(1001, 30, 40)
        stats = client.stats()
        assert stats["durability_degraded"] is True
        assert stats["durability"]["degraded_reason"]

    def test_degraded_survives_recovery_reopen(self, tmp_path):
        """Reopening the WAL directory is the documented way back."""
        store = IntervalStore.open(
            _collection(), "hintm_hybrid", wal_dir=str(tmp_path), fsync="always"
        )
        store.insert(Interval(1000, 10, 20))
        faults.injector.arm("append.before_write", action="io_error")
        with pytest.raises(ReproError):
            store.insert(Interval(1001, 30, 40))
        store.close()
        recovered = IntervalStore.open(
            _collection(), "hintm_hybrid", wal_dir=str(tmp_path), fsync="always"
        )
        assert not recovered.durability.degraded
        assert 1000 in set(recovered.query().overlapping(0, 10**6).ids())
        assert 1001 not in set(recovered.query().overlapping(0, 10**6).ids())
        recovered.insert(Interval(1002, 50, 60))  # writable again
        recovered.close()


# ---------------------------------------------------------------------- #
# client retry / teardown
# ---------------------------------------------------------------------- #
class TestClientRetries:
    def test_unreachable_server_raises_typed_error_after_retries(self):
        client = ServeClient(port=1, timeout=0.5, retries=2, backoff=0.001)
        with pytest.raises(ServerUnavailableError) as excinfo:
            client.query(0, 100)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value, ReproError)
        assert isinstance(excinfo.value, ConnectionError)
        assert client._connection is None  # socket torn down on exhaustion

    def test_updates_never_auto_retry(self):
        client = ServeClient(port=1, timeout=0.5, retries=5, backoff=0.001)
        with pytest.raises(ServerUnavailableError) as excinfo:
            client.insert(1, 2, 3)
        assert excinfo.value.attempts == 1  # fail-fast: no blind re-send

    def test_retry_recovers_a_dropped_keepalive(self, durable_served):
        _, handle, client = durable_served
        assert client.query(0, 100)["count"] >= 0
        # server-side close of the keep-alive: the next request must
        # transparently reconnect instead of surfacing ECONNRESET
        client._connection.sock.close()
        assert client.query(0, 100)["count"] >= 0

    def test_overload_retry_is_opt_in(self, durable_served):
        store, handle, _ = durable_served
        eager = ServeClient(port=handle.port)  # default: no 503 retry
        faults.injector.arm("append.before_write", action="io_error")
        with pytest.raises(ServerOverloaded):
            eager.insert(1001, 30, 40)
        eager.close()


# ---------------------------------------------------------------------- #
# poller-lag gauges
# ---------------------------------------------------------------------- #
def test_poller_lag_gauges_reach_stats(durable_served):
    _, handle, client = durable_served
    assert client.stats()["stream"]["poller_lag"] == 0.0
    first = client.subscribe(0, 10_000)
    second = client.subscribe(0, 10_000)
    client.insert(2000, 100, 110)  # lands in both logs
    stream = client.stats()["stream"]
    assert stream["poller_lag"] == 2.0
    assert stream["slowest_poller_lag"] == 1.0
    # draining one subscription halves the total, the max tracks the laggard
    client.poll_deltas(first["subscription_id"], after=first["generation"], timeout=0)
    client.poll_deltas(
        first["subscription_id"],
        after=first["generation"] + 1,
        timeout=0,
    )
    stream = client.stats()["stream"]
    assert stream["poller_lag"] == 1.0
    assert stream["slowest_poller_lag"] == 1.0


# ---------------------------------------------------------------------- #
# StreamClient resumption across a restart
# ---------------------------------------------------------------------- #
def test_stream_client_resumes_from_ack_after_restart(tmp_path):
    store = IntervalStore.open(
        _collection(), "hintm_hybrid", wal_dir=str(tmp_path), fsync="always"
    )
    handle = start_server_thread(store)
    client = StreamClient(port=handle.port)
    client.subscribe(0, 10_000)
    subscription_id = client.subscription_id

    handle.server._stream_manager()  # the manager checkpoints its registry
    store.insert(Interval(3000, 50, 60))
    client.poll(timeout=0)  # folds + acks the delta
    acked = client.generation
    ids_at_ack = client.ids()
    assert 3000 in ids_at_ack

    # checkpoint covers the acked generation, then more updates land that
    # the client never saw before the "crash"
    store.maintain(force=True, checkpoint=True)
    store.insert(Interval(3001, 70, 80))
    store.delete(0)
    handle.stop()
    # no store.close(): fsync="always" already made every record durable

    recovered = IntervalStore.open(
        _collection(), "hintm_hybrid", wal_dir=str(tmp_path), fsync="always"
    )
    assert recovered.restored_stream is not None
    handle2 = start_server_thread(recovered, stream=recovered.restored_stream)
    try:
        resumed = StreamClient(port=handle2.port)
        # graft the pre-crash client state: same subscription, same ack
        resumed._subscription_id = subscription_id
        resumed._generation = acked
        resumed._ids = set(ids_at_ack)
        response = resumed.poll(timeout=0)
        assert "resynced" not in response
        assert resumed.resyncs == 0
        added = {i for d in response["deltas"] for i in d["added"]}
        removed = {i for d in response["deltas"] for i in d["removed"]}
        assert added == {3001}
        assert removed == {0}
        assert resumed.generation > acked
        resumed.close()

        # an ack from *before* the checkpoint cannot be caught up exactly:
        # the server must demand a resync, never silently skip deltas
        stale = StreamClient(port=handle2.port)
        stale._subscription_id = subscription_id
        stale._generation = -1
        stale._ids = set()
        stale._spec = {"start": 0, "end": 10_000, "stab": None,
                       "relation": None, "min_duration": 0,
                       "max_duration": None}
        response = stale.poll(timeout=0)
        assert response.get("resynced") is True
        assert stale.resyncs == 1
        stale.close()
    finally:
        handle2.stop()
        recovered.close()
