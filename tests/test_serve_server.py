"""The asyncio query server: endpoints, caching, admission control, drain."""

import threading
import time

import pytest

from repro.core.interval import Interval, IntervalCollection, Query
from repro.engine import IntervalStore
from repro.serve.client import ServeClient, ServerError, ServerOverloaded
from repro.serve.server import QueryServer, start_server_thread


def _collection(n=300, seed=5):
    import numpy as np

    rng = np.random.default_rng(seed)
    starts = rng.integers(0, 10_000, n)
    ends = starts + rng.integers(0, 400, n)
    return IntervalCollection.from_pairs(
        [(int(s), int(e)) for s, e in zip(starts, ends)]
    )


def _oracle(collection, start, end):
    return {
        int(i)
        for i, s, e in zip(collection.ids, collection.starts, collection.ends)
        if s <= end and start <= e
    }


@pytest.fixture()
def served():
    collection = _collection()
    store = IntervalStore.open(
        collection, "hintm_hybrid", num_shards=2, replication_factor=2
    )
    handle = start_server_thread(store, cache=128)
    client = ServeClient(port=handle.port)
    yield collection, store, client
    client.close()
    handle.stop()
    store.close()


class TestEndpoints:
    def test_query_matches_oracle(self, served):
        collection, _, client = served
        for start, end in ((0, 2_000), (5_000, 5_100), (9_000, 20_000)):
            response = client.query(start, end)
            assert set(response["ids"]) == _oracle(collection, start, end)
            assert response["count"] == len(response["ids"])

    def test_count_only(self, served):
        collection, _, client = served
        response = client.query(0, 6_000, count_only=True)
        assert response["count"] == len(_oracle(collection, 0, 6_000))
        assert "ids" not in response
        # every answer carries the generation token the cluster router
        # keys its distributed cache off
        assert isinstance(response["generation"], int)

    def test_stabbing(self, served):
        collection, _, client = served
        response = client.stab(5_000)
        assert set(response["ids"]) == _oracle(collection, 5_000, 5_000)

    def test_batch_matches_oracle(self, served):
        collection, _, client = served
        pairs = [(0, 1_000), (2_000, 4_000), (0, 1_000)]
        results = client.batch(pairs)
        assert len(results) == 3
        for (start, end), result in zip(pairs, results):
            assert set(result["ids"]) == _oracle(collection, start, end)
        counts = client.batch(pairs, count_only=True)
        for (start, end), result in zip(pairs, counts):
            assert result["count"] == len(_oracle(collection, start, end))

    def test_get_with_query_string(self, served):
        _, _, client = served
        response = client._request("GET", "/query?start=0&end=1000&count_only=1")
        assert "count" in response and "ids" not in response

    def test_health_and_stats(self, served):
        _, store, client = served
        assert client.health() == {"status": "ok"}
        stats = client.stats()
        assert stats["backend"] == "sharded"
        assert stats["intervals"] == len(store)
        assert stats["epoch"] == store.index.epoch
        assert stats["replica_health"] == store.index.replica_health()
        assert stats["cache"]["capacity"] == 128

    def test_unknown_endpoint_404(self, served):
        _, _, client = served
        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_malformed_requests_400(self, served):
        _, _, client = served
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/query", {"start": 3})
        assert excinfo.value.status == 400
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/query", {"start": 9, "end": 3})
        assert excinfo.value.status == 400  # InvalidQueryError -> client error
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/batch", {"queries": []})
        assert excinfo.value.status == 400


class TestCacheIntegration:
    def test_repeats_hit_the_cache(self, served):
        _, _, client = served
        first = client.query(0, 3_000)
        before = client.stats()["cache"]
        second = client.query(0, 3_000)
        after = client.stats()["cache"]
        assert second == first
        assert after["hits"] == before["hits"] + 1

    def test_insert_invalidates_cached_answer(self, served):
        collection, _, client = served
        baseline = set(client.query(4_000, 4_500)["ids"])
        client.query(4_000, 4_500)  # cached now
        client.insert(77_000, 4_100, 4_200)
        response = client.query(4_000, 4_500)
        assert set(response["ids"]) == baseline | {77_000}
        assert client.stats()["cache"]["invalidated"] >= 1

    def test_delete_invalidates_cached_answer(self, served):
        collection, _, client = served
        victim = next(iter(_oracle(collection, 0, 20_000)))
        before = set(client.query(0, 20_000)["ids"])
        assert client.delete(victim)["deleted"]
        after = set(client.query(0, 20_000)["ids"])
        assert after == before - {victim}

    def test_maintain_endpoint_moves_generation(self, served):
        _, store, client = served
        client.insert(88_000, 100, 200)
        generation = client.stats()["result_generation"]
        response = client.maintain(force=True)
        assert "summary" in response
        assert response["generation"] >= generation

    def test_batch_fills_and_uses_cache(self, served):
        collection, _, client = served
        pairs = [(0, 2_500), (3_000, 5_500)]
        client.batch(pairs)
        before = client.stats()["cache"]
        client.batch(pairs)
        after = client.stats()["cache"]
        assert after["hits"] >= before["hits"] + 2

    def test_cache_stats_mirrored_into_query_stats(self, served):
        _, store, client = served
        client.query(0, 3_333)
        client.query(0, 3_333)
        stats = store.query().overlapping(0, 3_333).stats()
        assert stats.extra["cache_hits"] >= 1.0
        assert stats.extra["cache_size"] >= 1.0


class TestAdmissionControl:
    def test_overload_rejected_with_503(self):
        collection = _collection()
        store = IntervalStore.open(collection, "hintm_opt", num_shards=2)
        # a store whose batches park until released: every admitted request
        # stays in flight, so the second concurrent request must bounce
        gate = threading.Event()
        original = store.run_batch

        def slow_run_batch(queries, count_only=False):
            gate.wait(timeout=10)
            return original(queries, count_only=count_only)

        store.run_batch = slow_run_batch
        handle = start_server_thread(store, cache=0, max_pending=1)
        rejected = []
        answered = []

        def fire():
            client = ServeClient(port=handle.port)
            try:
                answered.append(client.query(0, 1_000))
            except ServerOverloaded as exc:
                rejected.append(exc)
            finally:
                client.close()

        threads = [threading.Thread(target=fire) for _ in range(4)]
        try:
            for thread in threads:
                thread.start()
                time.sleep(0.05)  # let each request reach admission in order
            gate.set()
            for thread in threads:
                thread.join(timeout=10)
            assert rejected, "admission control never rejected under overload"
            assert answered, "every request was rejected -- nothing served"
            assert all(exc.status == 503 for exc in rejected)
            assert all(
                exc.payload.get("error") == "overloaded" for exc in rejected
            )
            stats = ServeClient(port=handle.port).stats()
            assert stats["rejected"] == len(rejected)
        finally:
            gate.set()
            handle.stop()
            store.close()

    def test_rejections_carry_retry_after(self):
        collection = _collection()
        store = IntervalStore.open(collection, "hintm_opt")
        gate = threading.Event()
        original = store.run_batch
        store.run_batch = lambda q, count_only=False: (
            gate.wait(10),
            original(q, count_only=count_only),
        )[1]
        handle = start_server_thread(store, cache=0, max_pending=1)
        try:
            background = threading.Thread(
                target=lambda: ServeClient(port=handle.port).query(0, 10)
            )
            background.start()
            time.sleep(0.1)
            with pytest.raises(ServerOverloaded) as excinfo:
                ServeClient(port=handle.port).query(0, 10)
            assert excinfo.value.payload["retry_after"] == 1
            gate.set()
            background.join(timeout=10)
        finally:
            gate.set()
            handle.stop()
            store.close()


class TestLifecycle:
    def test_drain_finishes_inflight_then_refuses(self):
        collection = _collection()
        store = IntervalStore.open(collection, "hintm_opt")
        release = threading.Event()
        original = store.run_batch

        def slow_run_batch(queries, count_only=False):
            release.wait(timeout=10)
            return original(queries, count_only=count_only)

        store.run_batch = slow_run_batch
        handle = start_server_thread(store, cache=0)
        answers = []
        worker = threading.Thread(
            target=lambda: answers.append(ServeClient(port=handle.port).query(0, 9_999))
        )
        worker.start()
        time.sleep(0.15)  # the request is admitted and parked in the store

        stopper = threading.Thread(target=handle.stop)
        stopper.start()
        time.sleep(0.15)  # stop() is now draining, waiting on the request
        release.set()
        worker.join(timeout=10)
        stopper.join(timeout=10)
        # the in-flight request completed despite the concurrent drain...
        assert answers and set(answers[0]["ids"]) == _oracle(collection, 0, 9_999)
        # ...and the listener is gone afterwards
        with pytest.raises(OSError):
            ServeClient(port=handle.port, timeout=1).health()
        store.close()

    def test_batching_coalesces_concurrent_queries(self):
        collection = _collection()
        store = IntervalStore.open(collection, "hintm_opt", num_shards=2)
        handle = start_server_thread(store, cache=0, batch_window=0.01, max_batch=32)
        try:
            expected = {
                (a, b): _oracle(collection, a, b)
                for a, b in ((0, 1_000), (1_000, 2_000), (2_000, 3_000), (3_000, 4_000))
            }
            failures = []

            def fire(start, end):
                client = ServeClient(port=handle.port)
                try:
                    for _ in range(5):
                        got = set(client.query(start, end)["ids"])
                        if got != expected[(start, end)]:
                            failures.append((start, end))
                finally:
                    client.close()

            threads = [
                threading.Thread(target=fire, args=pair) for pair in expected
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not failures
            stats = ServeClient(port=handle.port).stats()
            assert stats["batched_queries"] >= stats["batches"] >= 1
        finally:
            handle.stop()
            store.close()

    def test_server_parameter_validation(self):
        store = IntervalStore.from_pairs([(1, 2)])
        with pytest.raises(ValueError, match="max_pending"):
            QueryServer(store, max_pending=0)
        with pytest.raises(ValueError, match="max_batch"):
            QueryServer(store, max_batch=0)
        store.close()


class TestRequestLimits:
    def test_oversized_body_rejected_with_413(self):
        import http.client

        from repro.serve.server import MAX_BODY_BYTES

        store = IntervalStore.from_pairs([(1, 5), (3, 9)])
        handle = start_server_thread(store, cache=0)
        try:
            connection = http.client.HTTPConnection(
                "127.0.0.1", handle.port, timeout=10
            )
            # claim an absurd body without sending it: the server must
            # reject on the header alone, never buffer toward the claim
            connection.putrequest("POST", "/query")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 413
            assert b"exceeds" in response.read()
            connection.close()
            # the server is still healthy for well-behaved clients
            client = ServeClient(port=handle.port)
            assert client.health() == {"status": "ok"}
            client.close()
        finally:
            handle.stop()
            store.close()

    def test_update_requests_are_not_blind_retried(self):
        # the classification, not the network failure: /insert and /delete
        # must never be in the client's re-send set
        assert "/insert" not in ServeClient._RETRYABLE_PATHS
        assert "/delete" not in ServeClient._RETRYABLE_PATHS
        assert "/maintain" not in ServeClient._RETRYABLE_PATHS
        assert "/query" in ServeClient._RETRYABLE_PATHS


class TestHttpContract:
    def test_mutations_require_post(self, served):
        _, store, client = served
        size = len(store)
        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/insert?id=123456&start=0&end=5")
        assert excinfo.value.status == 405
        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/delete?id=0")
        assert excinfo.value.status == 405
        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/maintain")
        assert excinfo.value.status == 405
        assert len(store) == size  # nothing mutated

    def test_validation_errors_do_not_inflate_rejected(self, served):
        _, _, client = served
        before = client.stats()
        with pytest.raises(ServerError):
            client._request("POST", "/query", {"start": 3})  # 400
        after = client.stats()
        assert after["rejected"] == before["rejected"]
        assert after["errors"] == before["errors"] + 1

    def test_large_batch_chunks_through_max_batch(self):
        collection = _collection()
        store = IntervalStore.open(collection, "hintm_opt", num_shards=2)
        handle = start_server_thread(store, cache=0, max_batch=8)
        try:
            client = ServeClient(port=handle.port)
            pairs = [(i * 10, i * 10 + 500) for i in range(50)]
            results = client.batch(pairs)
            for (start, end), result in zip(pairs, results):
                assert set(result["ids"]) == _oracle(collection, start, end)
            stats = client.stats()
            # 50 misses through max_batch=8 -> ceil(50/8)=7 run_batch calls
            assert stats["batches"] == 7
            assert stats["batched_queries"] == 50
            client.close()
        finally:
            handle.stop()
            store.close()


class TestBatchAdmissionWeight:
    def test_batch_heavier_than_max_pending_is_rejected_as_client_error(self):
        collection = _collection()
        store = IntervalStore.open(collection, "hintm_opt", num_shards=2)
        # weight = ceil(queries / max_batch) chunks; 5 chunks > max_pending=4
        handle = start_server_thread(store, cache=0, max_batch=2, max_pending=4)
        try:
            client = ServeClient(port=handle.port)
            with pytest.raises(ServerError) as excinfo:
                client.batch([(i, i + 10) for i in range(10)])
            assert excinfo.value.status == 400
            assert "split the batch" in str(excinfo.value)
            # a batch that fits the bound still answers
            results = client.batch([(0, 1_000), (2_000, 3_000)])
            assert len(results) == 2
            client.close()
        finally:
            handle.stop()
            store.close()
