"""Acceptance benchmark for the serving subsystem.

The PR's bar, on a 100k-interval TAXIS-scale collection served over real
JSON-over-HTTP with concurrent keep-alive clients:

* hot repeated-query throughput through the server with the
  generation-keyed result cache is >= 5x the uncached path on a skewed
  (Zipf-weighted) workload -- the cache answers repeats with pre-encoded
  bodies while the uncached leg pays the full index probe + encode per
  request;
* cached results stay oracle-correct across interleaved inserts, deletes
  and maintenance passes (generation-keyed invalidation, asserted against a
  live-set oracle -- no explicit invalidation protocol exists to get wrong);
* killing one replica of a shard mid-workload degrades capacity but never
  correctness.
"""

import numpy as np
import pytest

from repro.bench.experiments import serving_throughput
from repro.core.interval import Interval, IntervalCollection, Query
from repro.engine import IntervalStore
from repro.serve.client import ServeClient
from repro.serve.server import start_server_thread

CARDINALITY = 100_000
NUM_QUERIES = 300
EXTENT = 0.05
#: the unoptimized HINT^m: per-query cost is dominated by the traversal, so
#: the cache's win is the index work it removes -- the optimized backend's
#: queries are already so close to the cost of serialising their own answer
#: that an HTTP-level cache cannot show a 5x gap
BACKEND = "hintm"


@pytest.fixture(scope="module")
def result():
    return serving_throughput(
        cardinality=CARDINALITY,
        num_queries=NUM_QUERIES,
        extent_fraction=EXTENT,
        backend=BACKEND,
    )


def test_cached_serving_beats_uncached_5x(result):
    rows = {r["mode"]: r for r in result["serving"]}
    cached, uncached = rows["cached"], rows["uncached"]
    assert cached["hit_rate"] > 0.5, (
        f"the skewed workload should mostly hit the cache, got "
        f"{cached['hit_rate']:.2f}"
    )
    ratio = cached["qps"] / uncached["qps"] if uncached["qps"] else 0.0
    assert ratio >= 5.0, (
        f"cached serving reached only {ratio:.2f}x over the uncached path "
        f"({cached['qps']:,.0f} vs {uncached['qps']:,.0f} req/s on the "
        f"{BACKEND} backend)"
    )


def test_replica_kill_mid_workload_never_breaks_correctness(result):
    stages = {r["stage"]: r for r in result["failover"]}
    assert set(stages) == {"all replicas", "one replica killed"}
    for row in stages.values():
        assert row["qps"] > 0
        assert row["correct"], "answers diverged from the store after the kill"
    killed = stages["one replica killed"]
    assert killed["survivors"] >= 1, "the kill left the shard dark"
    # the victim shard runs on its surviving replica
    health = killed["replica_health"]
    assert not all(health[killed["victim_shard"]])
    assert any(health[killed["victim_shard"]])


def test_cached_results_stay_oracle_correct_across_updates_and_maintenance():
    """Generation-keyed invalidation, end to end against a live-set oracle."""
    rng = np.random.default_rng(31)
    starts = rng.integers(0, 50_000, 3_000)
    ends = starts + rng.integers(0, 2_000, 3_000)
    collection = IntervalCollection.from_pairs(
        [(int(s), int(e)) for s, e in zip(starts, ends)]
    )
    live = {
        int(i): (int(s), int(e))
        for i, s, e in zip(collection.ids, collection.starts, collection.ends)
    }
    store = IntervalStore.open(collection, "hintm_hybrid", num_shards=4)
    handle = start_server_thread(store, cache=256)
    client = ServeClient(port=handle.port)
    hot = [Query(0, 20_000), Query(10_000, 30_000), Query(25_000, 52_000)]

    def oracle(query):
        return {
            i for i, (s, e) in live.items() if s <= query.end and query.start <= e
        }

    def assert_served_fresh():
        for query in hot:
            got = set(client.query(query.start, query.end)["ids"])
            assert got == oracle(query)
            count = client.query(query.start, query.end, count_only=True)["count"]
            assert count == len(got)

    next_id = 1_000_000
    try:
        assert_served_fresh()  # cold fill
        assert_served_fresh()  # repeats must hit the cache, still fresh
        assert client.stats()["cache"]["hits"] > 0
        for round_no in range(5):
            # interleave inserts and deletes through the server...
            for _ in range(10):
                start = int(rng.integers(0, 50_000))
                end = start + int(rng.integers(0, 3_000))
                client.insert(next_id, start, end)
                live[next_id] = (start, end)
                next_id += 1
            for victim in rng.choice(sorted(live), size=5, replace=False):
                assert client.delete(int(victim))["deleted"]
                del live[int(victim)]
            # ...every cached hot answer must reflect them immediately
            assert_served_fresh()
            # maintenance (journal folds, rebuilds, possible repartition)
            # must never resurrect a pre-maintenance cached answer either
            client.maintain(force=round_no % 2 == 0)
            assert_served_fresh()
        stats = client.stats()["cache"]
        assert stats["invalidated"] > 0, (
            "updates never invalidated a cached entry -- the generation "
            "keying is not wired through"
        )
    finally:
        client.close()
        handle.stop()
        store.close()
