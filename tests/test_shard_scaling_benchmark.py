"""Acceptance benchmark for the sharded parallel execution layer.

The PR's bar: on a 100k-interval, 1k-query workload, ``ShardedStore(K=4)``
with the thread-pool executor answers identically to the unsharded store and
delivers >= 2x batch-query throughput over K=1 serial on a scan-bound
backend (where shard pruning cuts per-query work by ~K)."""

import pytest

from repro.bench.experiments import shard_scaling
from repro.core.interval import Query
from repro.datasets.real_like import REAL_DATASET_PROFILES, generate_real_like
from repro.engine import ShardedStore, create_index
from repro.queries.generator import QueryWorkloadConfig, generate_queries

CARDINALITY = 100_000
NUM_QUERIES = 1_000


@pytest.fixture(scope="module")
def workload():
    collection = generate_real_like(
        REAL_DATASET_PROFILES["TAXIS"], cardinality=CARDINALITY, seed=7
    )
    queries = generate_queries(
        collection, QueryWorkloadConfig(count=NUM_QUERIES, extent_fraction=0.001, seed=7)
    )
    return collection, queries


def test_sharded_k4_threads_at_least_2x_over_k1_serial(workload):
    collection, _ = workload
    rows = shard_scaling(
        collection,
        num_queries=NUM_QUERIES,
        shard_counts=(1, 4),
        backends=("naive",),
        strategies=("equi_width",),
        workers=4,
        repeats=3,
    )
    by_key = {(r["num_shards"], r["executor"]): r for r in rows}
    baseline = by_key[(1, "serial")]
    threaded = by_key[(4, "threads")]
    assert baseline["speedup"] == pytest.approx(1.0)
    assert threaded["speedup"] >= 2.0, (
        f"K=4/threads reached only {threaded['speedup']:.2f}x over K=1 serial "
        f"({threaded['throughput']:,.0f} vs {baseline['throughput']:,.0f} q/s)"
    )


def test_sharded_ids_identical_to_unsharded_at_scale(workload):
    """Spot-check the equivalence half of the acceptance bar at full scale."""
    collection, queries = workload
    unsharded = create_index("naive", collection)
    store = ShardedStore.open(collection, "naive", num_shards=4, workers=4)
    sample = queries[:: max(1, len(queries) // 100)]  # ~100 queries
    batch = store.run_batch(sample)
    for query, ids in zip(sample, batch.ids):
        assert sorted(ids) == sorted(unsharded.query(Query(query.start, query.end)))
