"""Sharded-vs-unsharded equivalence and the sharded execution facade.

The central property: a :class:`ShardedStore` is an *execution* detail --
for every registered backend, every shard count and both partitioning
strategies, it must answer exactly like the unsharded store (whose oracle is
the naive scan)."""

import numpy as np
import pytest

from repro.core.allen import AllenRelation
from repro.core.base import QueryStats
from repro.core.interval import Interval, IntervalCollection, Query
from repro.engine import (
    IntervalStore,
    MergedResultSet,
    ShardedIndex,
    ShardedStore,
    ThreadedExecutor,
    available_backends,
    create_index,
    get_spec,
)

#: every non-composite backend takes part in the equivalence sweep
ALL_BACKENDS = [
    name for name in available_backends() if not get_spec(name).composite
]

#: cheap construction parameters for the sweep
SMALL_KWARGS = {
    "grid1d": {"num_partitions": 32},
    "timeline": {"num_checkpoints": 16},
    "period": {"num_coarse_partitions": 8, "num_levels": 3},
    "hintm": {"num_bits": 7},
    "hintm_sub": {"num_bits": 7},
    "hintm_opt": {"num_bits": 7},
    "hintm_hybrid": {"num_bits": 7},
}


def _random_workload(collection, rng, count=40, within_span=False):
    """Randomized overlap + stabbing queries (optionally clamped to the span,
    for discrete-domain backends that cannot represent outside endpoints)."""
    lo, hi = collection.span()
    margin = 0 if within_span else 50
    queries = []
    for _ in range(count):
        start = int(rng.integers(lo - margin, hi + margin))
        extent = int(rng.integers(0, max((hi - lo) // 3, 1)))
        end = start + extent
        if within_span:
            end = min(end, hi)
        queries.append(Query(start, end))
    for _ in range(count // 2):
        queries.append(
            Query.stabbing(int(rng.integers(lo - margin // 5, hi + margin // 5)))
        )
    return queries


class TestShardedEquivalence:
    """Property-style: ShardedStore == naive oracle, for every backend/K/strategy."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_every_backend_matches_oracle_at_k4(self, synthetic_collection, backend, rng):
        kwargs = dict(SMALL_KWARGS.get(backend, {}))
        store = ShardedStore.open(
            synthetic_collection, backend, num_shards=4, **kwargs
        )
        for query in _random_workload(synthetic_collection, rng, count=25, within_span=True):
            got = sorted(store.query().overlapping(query.start, query.end).ids())
            want = sorted(synthetic_collection.query_ids(query).tolist())
            assert got == want, (backend, query)

    @pytest.mark.parametrize("strategy", ["equi_width", "balanced"])
    @pytest.mark.parametrize("k", [1, 2, 4, 7])
    def test_shard_counts_and_strategies(self, synthetic_collection, k, strategy, rng):
        store = ShardedStore.open(
            synthetic_collection,
            "hintm_opt",
            num_shards=k,
            strategy=strategy,
            num_bits=7,
        )
        for query in _random_workload(synthetic_collection, rng, count=30):
            builder = store.query().overlapping(query.start, query.end)
            want = sorted(synthetic_collection.query_ids(query).tolist())
            assert sorted(builder.ids()) == want, (k, strategy, query)
            assert store.query().overlapping(query.start, query.end).count() == len(want)
            assert store.query().overlapping(query.start, query.end).exists() == bool(want)

    def test_skewed_data_balanced_strategy(self, taxis_like_collection, rng):
        store = ShardedStore.open(
            taxis_like_collection, "grid1d", num_shards=4, strategy="balanced",
            num_partitions=64,
        )
        for query in _random_workload(taxis_like_collection, rng, count=25):
            got = sorted(store.query().overlapping(query.start, query.end).ids())
            assert got == sorted(taxis_like_collection.query_ids(query).tolist())

    def test_long_intervals_duplicated_not_double_reported(self, books_like_collection, rng):
        """BOOKS-like data: many intervals span shard cuts; dedup must hold."""
        store = ShardedStore.open(books_like_collection, "interval_tree", num_shards=7)
        for query in _random_workload(books_like_collection, rng, count=20):
            ids = store.query().overlapping(query.start, query.end).ids()
            assert len(ids) == len(set(ids))  # no duplicate reports
            assert sorted(ids) == sorted(books_like_collection.query_ids(query).tolist())

    def test_batch_matches_unsharded(self, synthetic_collection, synthetic_queries):
        plain = IntervalStore.open(synthetic_collection, "hintm_opt", num_bits=8)
        sharded = ShardedStore.open(
            synthetic_collection, "hintm_opt", num_shards=4, num_bits=8
        )
        expected = plain.run_batch(synthetic_queries)
        got = sharded.run_batch(synthetic_queries)
        assert [sorted(ids) for ids in got.ids] == [sorted(ids) for ids in expected.ids]
        assert got.counts == expected.counts


class TestThreadPoolExecution:
    def test_threaded_batch_is_deterministic(self, synthetic_collection, synthetic_queries):
        """Same workload, twice through a 4-worker pool == serial answers."""
        serial = ShardedStore.open(
            synthetic_collection, "hintm_opt", num_shards=4, num_bits=8
        )
        threaded = ShardedStore.open(
            synthetic_collection, "hintm_opt", num_shards=4, workers=4, num_bits=8
        )
        baseline = [sorted(ids) for ids in serial.run_batch(synthetic_queries).ids]
        first = [sorted(ids) for ids in threaded.run_batch(synthetic_queries).ids]
        second = [sorted(ids) for ids in threaded.run_batch(synthetic_queries).ids]
        assert first == baseline
        assert second == baseline

    def test_count_only_batch_through_threads(self, synthetic_collection, synthetic_queries):
        threaded = ShardedStore.open(
            synthetic_collection, "naive", num_shards=4, workers=3
        )
        counts = threaded.run_batch(synthetic_queries, count_only=True).counts
        expected = [
            len(synthetic_collection.query_ids(q)) for q in synthetic_queries
        ]
        assert counts == expected
        # the count path fans out on the index's pool (run_batch passes it on)
        assert threaded.index.executor._pool is not None
        threaded.close()
        assert threaded.index.executor._pool is None

    def test_store_close_and_context_manager(self, synthetic_collection):
        with ShardedStore.open(
            synthetic_collection, "naive", num_shards=2, workers=2
        ) as store:
            store.run_batch([Query(0, 10**6)])
        assert store.index.executor._pool is None  # closed on exit
        with IntervalStore.open(synthetic_collection, "naive", workers=2) as plain:
            plain.run_batch([Query(0, 10**6), Query(5, 50)])
        assert plain.executor._pool is None

    def test_executor_shared_for_build_and_query(self, synthetic_collection):
        with ThreadedExecutor(2) as executor:
            index = ShardedIndex(
                synthetic_collection, "grid1d", num_shards=4, executor=executor,
                num_partitions=32,
            )
            assert index.executor is executor
            lo, hi = synthetic_collection.span()
            got = sorted(index.query(Query(lo, hi)))
            assert got == sorted(synthetic_collection.ids.tolist())


class TestMergedResultSet:
    def test_builder_returns_merged_lazy_handle(self, synthetic_collection):
        store = ShardedStore.open(synthetic_collection, "hintm_opt", num_shards=4, num_bits=7)
        lo, hi = synthetic_collection.span()
        results = store.query().overlapping(lo, hi).build()
        assert isinstance(results, MergedResultSet)
        assert len(results.children) == store.num_shards  # all shards overlap
        assert repr(results).endswith("lazy)")
        assert results.count() == len(synthetic_collection)

    def test_single_shard_query_has_one_child(self, synthetic_collection):
        store = ShardedStore.open(synthetic_collection, "hintm_opt", num_shards=4, num_bits=7)
        point = int(store.plan.cuts[0]) + 1
        results = store.query().stabbing(point).build()
        assert len(results.children) == 1

    def test_limit_applies_after_merge(self, synthetic_collection):
        store = ShardedStore.open(synthetic_collection, "hintm_opt", num_shards=4, num_bits=7)
        lo, hi = synthetic_collection.span()
        ids = store.query().overlapping(lo, hi).limit(5).ids()
        assert len(ids) == len(set(ids)) == 5
        assert store.query().overlapping(lo, hi).limit(5).count() == 5

    def test_relation_refinement_across_shards(self, synthetic_collection):
        store = ShardedStore.open(synthetic_collection, "hintm", num_shards=4, num_bits=7)
        lo, hi = synthetic_collection.span()
        mid = (lo + hi) // 2
        query = Query(mid - 500, mid + 500)
        got = sorted(
            store.query()
            .overlapping(query.start, query.end)
            .relation(AllenRelation.DURING)
            .ids()
        )
        plain = IntervalStore.open(synthetic_collection, "hintm", num_bits=7)
        want = sorted(
            plain.query()
            .overlapping(query.start, query.end)
            .relation(AllenRelation.DURING)
            .ids()
        )
        assert got == want

    @pytest.mark.parametrize("relation", [AllenRelation.BEFORE, AllenRelation.AFTER])
    def test_non_overlap_relations_probe_all_shards(self, synthetic_collection, relation):
        """BEFORE/AFTER answers live in shards the query range never touches."""
        store = ShardedStore.open(synthetic_collection, "naive", num_shards=4)
        plain = IntervalStore.open(synthetic_collection, "naive")
        lo, hi = synthetic_collection.span()
        # a query pinned inside the last shard (BEFORE results are elsewhere)
        query = Query(hi - 100, hi - 50)
        got = sorted(
            store.query().overlapping(query.start, query.end).relation(relation).ids()
        )
        want = sorted(
            plain.query().overlapping(query.start, query.end).relation(relation).ids()
        )
        assert got == want
        assert store.query().overlapping(query.start, query.end).relation(relation).count() == len(want)

    def test_exists_short_circuits_lazily(self, synthetic_collection):
        store = ShardedStore.open(synthetic_collection, "hintm_opt", num_shards=4, num_bits=7)
        lo, hi = synthetic_collection.span()
        results = store.query().overlapping(lo, hi).build()
        assert results.exists()
        assert results._ids is None  # still lazy: no id list was materialised


class TestShardRoutedUpdates:
    def test_insert_routes_to_owning_shard_delta(self, synthetic_collection):
        store = ShardedStore.open(
            synthetic_collection, "hintm_hybrid", num_shards=4, num_bits=7
        )
        cuts = store.plan.cuts
        inside_shard_2 = (cuts[1] + cuts[2]) // 2
        new = Interval(10_000_000, inside_shard_2, inside_shard_2 + 3)
        before = len(store)
        store.insert(new)
        assert len(store) == before + 1
        # only shard 2's delta got the interval
        deltas = [shard.delta_size for shard in store.index.shards]
        assert deltas[2] == 1 and sum(deltas) == 1
        assert 10_000_000 in store.query().stabbing(inside_shard_2 + 1).ids()

    def test_boundary_spanning_insert_lands_in_both_shards(self, synthetic_collection):
        store = ShardedStore.open(
            synthetic_collection, "hintm_hybrid", num_shards=4, num_bits=7
        )
        cut = store.plan.cuts[0]
        spanning = Interval(10_000_001, cut - 5, cut + 5)
        store.insert(spanning)
        deltas = [shard.delta_size for shard in store.index.shards]
        assert deltas[0] == 1 and deltas[1] == 1
        # reported once despite two copies
        ids = store.query().overlapping(cut - 2, cut + 2).ids()
        assert ids.count(10_000_001) == 1

    def test_delete_tombstones_every_copy(self, synthetic_collection):
        store = ShardedStore.open(
            synthetic_collection, "hintm_hybrid", num_shards=4, num_bits=7
        )
        cut = store.plan.cuts[1]
        spanning = Interval(10_000_002, cut - 5, cut + 5)
        store.insert(spanning)
        before = len(store)
        assert store.delete(10_000_002)
        assert len(store) == before - 1
        assert 10_000_002 not in store.query().overlapping(cut - 5, cut + 5).ids()
        assert not store.delete(10_000_002)  # already gone

    def test_delete_preexisting_interval(self, synthetic_collection):
        store = ShardedStore.open(
            synthetic_collection, "hintm_hybrid", num_shards=4, num_bits=7
        )
        victim = synthetic_collection[0]
        assert store.delete(victim.id)
        assert victim.id not in store.query().overlapping(victim.start, victim.end).ids()

    def test_mixed_workload_matches_oracle(self, synthetic_collection, rng):
        """Interleaved inserts/deletes/queries stay equivalent to a live oracle."""
        store = ShardedStore.open(
            synthetic_collection, "hintm_hybrid", num_shards=4, num_bits=7
        )
        live = {s.id: s for s in synthetic_collection}
        lo, hi = synthetic_collection.span()
        next_id = 10_000_100
        for step in range(60):
            action = rng.integers(0, 3)
            if action == 0:
                start = int(rng.integers(lo, hi))
                new = Interval(next_id, start, start + int(rng.integers(0, 2000)))
                store.insert(new)
                live[new.id] = new
                next_id += 1
            elif action == 1 and live:
                victim = list(live)[int(rng.integers(0, len(live)))]
                assert store.delete(victim)
                del live[victim]
            else:
                start = int(rng.integers(lo, hi))
                q = Query(start, start + int(rng.integers(0, 5000)))
                got = sorted(store.query().overlapping(q.start, q.end).ids())
                want = sorted(s.id for s in live.values() if s.overlaps(q))
                assert got == want, (step, q)


class TestShardedStatsAndMemory:
    def test_query_stats_merge_across_shards(self, synthetic_collection):
        store = ShardedStore.open(synthetic_collection, "hintm_opt", num_shards=4, num_bits=7)
        lo, hi = synthetic_collection.span()
        stats = store.query().overlapping(lo, hi).stats()
        assert stats.results == len(synthetic_collection)
        per_shard = [
            shard.query_with_stats(Query(lo, hi))[1] for shard in store.index.shards
        ]
        assert stats.comparisons == sum(s.comparisons for s in per_shard)
        assert stats.partitions_accessed == sum(s.partitions_accessed for s in per_shard)

    def test_query_stats_merge_and_add(self):
        a = QueryStats(results=2, comparisons=5, candidates=3, extra={"x": 1.0})
        b = QueryStats(results=1, comparisons=2, candidates=4, extra={"x": 0.5, "y": 2.0})
        total = a + b
        assert (total.results, total.comparisons, total.candidates) == (3, 7, 7)
        assert total.extra == {"x": 1.5, "y": 2.0}
        # __add__ does not mutate its operands
        assert a.comparisons == 5 and b.comparisons == 2
        a += b
        assert a.comparisons == 7
        assert sum([QueryStats(results=1), QueryStats(results=2)]).results == 3

    def test_memory_counted_once_via_memo(self, synthetic_collection):
        index = create_index("sharded", synthetic_collection, backend="hintm_opt",
                             num_shards=4, num_bits=7)
        total = index.memory_bytes()
        assert total > 0
        bookkeeping = index.ingest_journal.nbytes
        assert total == sum(s.memory_bytes() for s in index.shards) + bookkeeping
        memo: set = set()
        assert index.memory_bytes(memo) == total
        # everything is already in the memo: a second pass adds nothing
        assert index.memory_bytes(memo) == 0
        assert index.shards[0].memory_bytes(memo) == 0

    def test_shared_buffers_counted_once(self, synthetic_collection):
        """Buffers aliased across sub-indexes are counted once via the memo."""
        first = create_index("naive", synthetic_collection)
        second = create_index("naive", synthetic_collection)
        # alias the data columns (as a composite sharing one source would)
        second._ids, second._starts, second._ends = (
            first._ids, first._starts, first._ends,
        )
        alone = first.memory_bytes()
        memo: set = set()
        combined = first.memory_bytes(memo) + second.memory_bytes(memo)
        # only the second index's private liveness mask adds bytes
        assert combined == alone + second._live.nbytes
        # without a memo, the aliased buffers are double-counted
        assert first.memory_bytes() + second.memory_bytes() == 2 * alone

    def test_hybrid_memory_uses_shared_memo(self, synthetic_collection):
        hybrid = create_index("hintm_hybrid", synthetic_collection, num_bits=7)
        assert hybrid.memory_bytes() > 0
        memo: set = set()
        assert hybrid.memory_bytes(memo) > 0
        assert hybrid.memory_bytes(memo) == 0


class TestShardedRegistryIntegration:
    def test_sharded_registered_as_composite(self):
        spec = get_spec("sharded")
        assert spec.composite
        assert "sharded" in available_backends()

    def test_create_index_builds_sharded(self, synthetic_collection):
        index = create_index("sharded", synthetic_collection, num_shards=3)
        assert isinstance(index, ShardedIndex)
        assert index.num_shards == 3
        assert index.backend == "hintm_opt"  # default inner backend, auto-tuned

    def test_sharded_cannot_nest(self, synthetic_collection):
        with pytest.raises(ValueError):
            ShardedIndex(synthetic_collection, backend="sharded", num_shards=2)

    def test_store_open_delegates_to_sharded(self, synthetic_collection):
        store = IntervalStore.open(synthetic_collection, num_shards=4)
        assert isinstance(store, ShardedStore)
        assert store.num_shards == 4
        assert store.shard_backend == "hintm_opt"
        plain = IntervalStore.open(synthetic_collection, num_shards=1)
        assert not isinstance(plain, ShardedStore)

    def test_k1_is_degenerate_single_index(self, synthetic_collection, rng):
        """K=1 sharded == the plain unsharded store, query for query."""
        sharded = ShardedStore.open(synthetic_collection, "hintm_opt", num_shards=1, num_bits=7)
        assert sharded.num_shards == 1
        plain = IntervalStore.open(synthetic_collection, "hintm_opt", num_bits=7)
        for query in _random_workload(synthetic_collection, rng, count=15):
            assert sorted(sharded.query().overlapping(query.start, query.end).ids()) == sorted(
                plain.query().overlapping(query.start, query.end).ids()
            )

    def test_empty_collection(self):
        store = ShardedStore.open(IntervalCollection.empty(), "hintm_opt", num_shards=4)
        assert len(store) == 0
        assert store.query().overlapping(0, 100).ids() == []
        assert store.query().stabbing(5).count() == 0
