"""Tests for the domain partitioner (repro.engine.sharding) and the
vectorized IntervalCollection.take/slice helpers it relies on."""

import numpy as np
import pytest

from repro.core.errors import InvalidIntervalError, InvalidQueryError
from repro.core.interval import IntervalCollection, Query
from repro.engine.sharding import PARTITION_STRATEGIES, ShardPlan, partition_collection


class TestTakeAndSlice:
    def test_take_with_boolean_mask(self, tiny_collection):
        mask = tiny_collection.starts >= 7
        picked = tiny_collection.take(mask)
        assert sorted(picked.ids.tolist()) == sorted(
            int(s.id) for s in tiny_collection if s.start >= 7
        )

    def test_take_with_positions_reorders_and_repeats(self, tiny_collection):
        picked = tiny_collection.take(np.array([3, 0, 0]))
        assert picked.ids.tolist() == [3, 0, 0]
        assert picked.starts.tolist() == [10, 5, 5]

    def test_take_rejects_wrong_length_mask(self, tiny_collection):
        with pytest.raises(InvalidIntervalError):
            tiny_collection.take(np.array([True, False]))

    def test_take_matches_iter_based_split(self, synthetic_collection):
        """The vectorized split selects exactly what a per-row loop would."""
        cutoff = int(np.median(synthetic_collection.starts))
        vectorized = synthetic_collection.take(synthetic_collection.starts < cutoff)
        looped = [s.id for s in synthetic_collection if s.start < cutoff]
        assert vectorized.ids.tolist() == looped

    def test_slice_is_a_view(self, tiny_collection):
        window = tiny_collection.slice(2, 5)
        assert len(window) == 3
        assert window.ids.base is tiny_collection.ids  # zero-copy
        assert window.ids.tolist() == tiny_collection.ids[2:5].tolist()

    def test_slice_open_ended(self, tiny_collection):
        assert tiny_collection.slice(stop=3).ids.tolist() == tiny_collection.ids[:3].tolist()
        assert tiny_collection.slice(5).ids.tolist() == tiny_collection.ids[5:].tolist()

    def test_subset_still_works(self, tiny_collection):
        assert tiny_collection.subset([1, 4]).ids.tolist() == [1, 4]


class TestShardPlan:
    def test_single_shard_has_no_cuts(self, synthetic_collection):
        plan = ShardPlan.for_collection(synthetic_collection, 1)
        assert plan.num_shards == 1
        assert plan.cuts == ()
        assert plan.shard_range(-10**9, 10**9) == (0, 0)

    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    @pytest.mark.parametrize("k", [2, 4, 7])
    def test_requested_shard_count(self, synthetic_collection, strategy, k):
        plan = ShardPlan.for_collection(synthetic_collection, k, strategy)
        assert 1 <= plan.num_shards <= k
        # a non-degenerate synthetic domain should give the full K
        assert plan.num_shards == k

    def test_balanced_equalises_start_counts(self, taxis_like_collection):
        plan = ShardPlan.for_collection(taxis_like_collection, 4, "balanced")
        counts = []
        for shard in range(plan.num_shards):
            lower, upper = plan.shard_bounds(shard)
            starts = taxis_like_collection.starts
            counts.append(int(((starts >= lower) & (starts <= upper)).sum()))
        assert min(counts) >= 0.5 * max(counts), counts

    def test_equi_width_equalises_widths(self, synthetic_collection):
        plan = ShardPlan.for_collection(synthetic_collection, 4, "equi_width")
        widths = [b - a for a, b in zip(plan.cuts, plan.cuts[1:])]
        assert max(widths) - min(widths) <= 2

    def test_shard_of_and_bounds_agree(self, synthetic_collection):
        plan = ShardPlan.for_collection(synthetic_collection, 5)
        lo, hi = synthetic_collection.span()
        for point in np.linspace(lo - 100, hi + 100, 37).astype(int):
            shard = plan.shard_of(int(point))
            lower, upper = plan.shard_bounds(shard)
            assert lower <= point <= upper

    def test_shard_range_covers_query(self, synthetic_collection):
        plan = ShardPlan.for_collection(synthetic_collection, 4)
        lo, hi = synthetic_collection.span()
        first, last = plan.shard_range(lo, hi)
        assert (first, last) == (0, plan.num_shards - 1)
        point = plan.cuts[0]  # first point of shard 1
        assert plan.shard_range(point, point) == (1, 1)
        assert plan.shard_range(point - 1, point) == (0, 1)

    def test_invalid_arguments(self, synthetic_collection):
        with pytest.raises(InvalidQueryError):
            ShardPlan.for_collection(synthetic_collection, 0)
        with pytest.raises(InvalidQueryError):
            ShardPlan.for_collection(synthetic_collection, 2, "round-robin")
        with pytest.raises(InvalidQueryError):
            ShardPlan(cuts=(5, 5))

    def test_empty_collection_degenerates(self):
        plan = ShardPlan.for_collection(IntervalCollection.empty(), 4)
        assert plan.num_shards == 1

    def test_degenerate_domain_shrinks(self):
        same = IntervalCollection.from_pairs([(5, 5)] * 10)
        plan = ShardPlan.for_collection(same, 4)
        assert plan.num_shards == 1


class TestPartitionCollection:
    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    @pytest.mark.parametrize("k", [2, 4, 7])
    def test_union_covers_everything(self, synthetic_collection, strategy, k):
        plan = ShardPlan.for_collection(synthetic_collection, k, strategy)
        pieces = partition_collection(synthetic_collection, plan)
        assert len(pieces) == plan.num_shards
        union = set()
        for piece in pieces:
            union.update(piece.ids.tolist())
        assert union == set(synthetic_collection.ids.tolist())

    def test_duplication_only_for_boundary_spanners(self, synthetic_collection):
        plan = ShardPlan.for_collection(synthetic_collection, 4)
        pieces = partition_collection(synthetic_collection, plan)
        copies: dict = {}
        for piece in pieces:
            for interval_id in piece.ids.tolist():
                copies[interval_id] = copies.get(interval_id, 0) + 1
        cuts = np.asarray(plan.cuts)
        for interval in synthetic_collection:
            # number of shards [start, end] overlaps == copies stored
            spans = 1 + int(((cuts > interval.start) & (cuts <= interval.end)).sum())
            assert copies[interval.id] == spans, interval

    def test_each_piece_answers_its_own_range(self, synthetic_collection):
        plan = ShardPlan.for_collection(synthetic_collection, 4)
        pieces = partition_collection(synthetic_collection, plan)
        for shard, piece in enumerate(pieces):
            lower, upper = plan.shard_bounds(shard)
            lo, hi = synthetic_collection.span()
            q = Query(int(max(lower, lo)), int(min(upper, hi)))
            expected = set(synthetic_collection.query_ids(q).tolist())
            assert set(piece.query_ids(q).tolist()) == expected

    def test_single_shard_returns_original(self, synthetic_collection):
        plan = ShardPlan.for_collection(synthetic_collection, 1)
        pieces = partition_collection(synthetic_collection, plan)
        assert pieces[0] is synthetic_collection
