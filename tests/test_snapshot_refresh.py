"""Snapshot refresh across the process-executor residency cache.

Satellite coverage for the maintenance subsystem: after updates stale the
shared-memory snapshot, a maintenance pass republishes it under a new
residency-token generation -- the old token is evicted from worker caches,
the new one attaches, and batches fan out again.  All assertions are
structural (token generations, readiness flags, answer equality), never
timing-based; both the fork and spawn start methods are exercised.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.core.interval import (
    HAS_SHARED_MEMORY,
    Interval,
    IntervalCollection,
    Query,
    SharedCollectionBuffer,
)
from repro.engine import MaintenanceCoordinator, ProcessExecutor, ShardedIndex
from repro.engine._procworker import (
    _RESIDENTS,
    ShardResidencySpec,
    _residency_for,
    resident_tokens,
    run_shard_task,
)

pytestmark = pytest.mark.skipif(
    not HAS_SHARED_MEMORY, reason="no multiprocessing.shared_memory"
)

START_METHODS = [
    method
    for method in ("fork", "spawn")
    if method in multiprocessing.get_all_start_methods()
]


def _workload(collection, count=12):
    lo, hi = collection.span()
    step = max(1, (hi - lo) // (count + 2))
    return [Query(lo + i * step, lo + (i + 2) * step) for i in range(count)]


def _oracle(collection, updates, query):
    live = {
        int(i): (int(s), int(e))
        for i, s, e in zip(collection.ids, collection.starts, collection.ends)
    }
    for kind, payload in updates:
        if kind == "insert":
            live[payload.id] = (payload.start, payload.end)
        else:
            live.pop(payload, None)
    return sorted(
        interval_id
        for interval_id, (start, end) in live.items()
        if start <= query.end and query.start <= end
    )


@pytest.mark.parametrize("start_method", START_METHODS)
class TestRefreshAcrossThePool:
    def test_fanout_restored_with_new_generation(self, taxis_like_collection, start_method):
        executor = ProcessExecutor(2, start_method=start_method)
        index = ShardedIndex(
            taxis_like_collection,
            backend="hintm_hybrid",
            num_shards=4,
            num_bits=6,
            executor=executor,
        )
        coordinator = MaintenanceCoordinator(index)
        try:
            queries = _workload(taxis_like_collection)
            index.query_batch(queries)  # workers build resident shards
            first_token = index._residency_spec(index._epoch).token
            assert index.snapshot_generation == 0
            assert index._process_fanout_ready()

            lo, hi = taxis_like_collection.span()
            updates = [
                ("insert", Interval(10**7, lo + 5, lo + (hi - lo) // 2)),
                ("delete", int(taxis_like_collection.ids[0])),
            ]
            for kind, payload in updates:
                if kind == "insert":
                    index.insert(payload)
                else:
                    assert index.delete(payload)
            assert not index._process_fanout_ready()  # snapshot is stale

            report = coordinator.maintain(force=True)
            assert report.snapshot_refreshed
            assert report.generation == index.snapshot_generation == 1
            assert index._process_fanout_ready()
            second_token = index._residency_spec(index._epoch).token
            assert second_token != first_token

            answers = index.query_batch(queries)
            for query, ids in zip(queries, answers):
                assert sorted(ids) == _oracle(taxis_like_collection, updates, query)

            # no worker may cache both generations: receiving the new token
            # evicts the superseded residency of the same index
            for tokens in executor.map(resident_tokens, list(range(8))):
                assert not (first_token in tokens and second_token in tokens)
        finally:
            index.close()
            executor.close()

    def test_repeated_refresh_cycles_stay_exact(self, taxis_like_collection, start_method):
        executor = ProcessExecutor(2, start_method=start_method)
        index = ShardedIndex(
            taxis_like_collection,
            backend="hintm_hybrid",
            num_shards=4,
            num_bits=6,
            executor=executor,
        )
        coordinator = MaintenanceCoordinator(index)
        try:
            queries = _workload(taxis_like_collection, count=6)
            updates = []
            lo, hi = taxis_like_collection.span()
            for cycle in range(3):
                update = ("insert", Interval(10**7 + cycle, lo + cycle, lo + cycle + 50))
                index.insert(update[1])
                updates.append(update)
                coordinator.maintain(force=True)
                assert index.snapshot_generation == cycle + 1
                assert index._process_fanout_ready()
                answers = index.query_batch(queries)
                for query, ids in zip(queries, answers):
                    assert sorted(ids) == _oracle(taxis_like_collection, updates, query)
        finally:
            index.close()
            executor.close()


class TestResidencyCacheEviction:
    """The in-process (worker-side) eviction rule, exercised directly."""

    def _spec(self, buffer, uid, generation):
        return ShardResidencySpec(
            token=f"{uid}:g{generation}",
            handle=buffer.handle,
            cuts=(50,),
            backend="naive",
            uid=uid,
            generation=generation,
        )

    def test_new_generation_evicts_same_uid_only(self):
        collection = IntervalCollection.from_pairs([(0, 10), (40, 60), (80, 90)])
        buffers = [SharedCollectionBuffer(collection) for _ in range(3)]
        saved = dict(_RESIDENTS)
        _RESIDENTS.clear()
        try:
            _residency_for(self._spec(buffers[0], "idx-a", 0))
            _residency_for(self._spec(buffers[1], "idx-b", 0))
            assert set(_RESIDENTS) == {"idx-a:g0", "idx-b:g0"}
            _residency_for(self._spec(buffers[2], "idx-a", 1))
            # the stale generation of idx-a is gone; idx-b is untouched
            assert set(_RESIDENTS) == {"idx-a:g1", "idx-b:g0"}
        finally:
            for residency in _RESIDENTS.values():
                residency.close()
            _RESIDENTS.clear()
            _RESIDENTS.update(saved)
            for buffer in buffers:
                buffer.unlink()

    def test_task_answers_from_new_snapshot_after_eviction(self):
        old = IntervalCollection.from_pairs([(0, 10)])
        new = IntervalCollection.from_pairs([(0, 10), (20, 30)])
        old_buffer = SharedCollectionBuffer(old)
        new_buffer = SharedCollectionBuffer(new)
        saved = dict(_RESIDENTS)
        _RESIDENTS.clear()
        try:
            spec_old = self._spec(old_buffer, "idx-r", 0)
            spec_new = ShardResidencySpec(
                token="idx-r:g1", handle=new_buffer.handle, cuts=(),
                backend="naive", uid="idx-r", generation=1,
            )
            positions = np.array([0], dtype=np.int64)
            starts = np.array([0], dtype=np.int64)
            ends = np.array([100], dtype=np.int64)
            _, _, before = run_shard_task((spec_old, 0, positions, starts, ends))
            assert before[0].tolist() == [0]
            _, _, after = run_shard_task((spec_new, 0, positions, starts, ends))
            assert sorted(after[0].tolist()) == [0, 1]
            assert set(_RESIDENTS) == {"idx-r:g1"}
        finally:
            for residency in _RESIDENTS.values():
                residency.close()
            _RESIDENTS.clear()
            _RESIDENTS.update(saved)
            old_buffer.unlink()
            new_buffer.unlink()


class TestRefreshWithoutProcesses:
    def test_refresh_is_a_noop_in_process_modes(self, synthetic_collection):
        index = ShardedIndex(synthetic_collection, backend="hintm_hybrid",
                             num_shards=4, num_bits=7)
        assert not index.refresh_snapshot()
        assert index.snapshot_generation == 0

    def test_close_after_refresh_unlinks_snapshot(self, taxis_like_collection):
        executor = ProcessExecutor(2)
        index = ShardedIndex(
            taxis_like_collection, backend="hintm_hybrid", num_shards=4,
            num_bits=6, executor=executor,
        )
        lo, _ = taxis_like_collection.span()
        index.insert(Interval(10**7, lo, lo + 10))
        assert index.refresh_snapshot()
        index.close()
        assert index._shared is None
        assert not index._process_fanout_ready()
        executor.close()

    def test_refresh_after_close_publishes_nothing(self, taxis_like_collection):
        """Close is terminal for publication: a background pass racing
        close() must not resurrect a snapshot nothing would ever unlink."""
        executor = ProcessExecutor(2)
        index = ShardedIndex(
            taxis_like_collection, backend="hintm_hybrid", num_shards=4,
            num_bits=6, executor=executor,
        )
        index.close()
        assert not index.refresh_snapshot()
        assert index._shared is None
        assert not index._process_fanout_ready()
        # in-process queries keep working after close
        lo, hi = taxis_like_collection.span()
        assert index.query_count(Query(lo, hi)) == len(taxis_like_collection)
        executor.close()
