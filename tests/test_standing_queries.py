"""Delta-replay exactness: folding a subscription's deltas onto its snapshot
must equal re-running the standing query, at every generation, across
backends, shard counts, executors and maintenance interleavings."""

import random

import pytest

from repro.core.interval import Interval, IntervalCollection, Query
from repro.engine import IntervalStore
from repro.stream import StandingQueryManager, UnknownSubscriptionError

DOMAIN = 10_000


def _collection(n=200, seed=11):
    rng = random.Random(seed)
    return IntervalCollection.from_intervals(
        [
            Interval(i, s, s + rng.randrange(1, 400))
            for i, s in enumerate(rng.randrange(0, DOMAIN) for _ in range(n))
        ]
    )


def _live_oracle(collection):
    return {
        int(i): (int(s), int(e))
        for i, s, e in zip(collection.ids, collection.starts, collection.ends)
    }


def _matching(live, subscription):
    return {
        i
        for i, (s, e) in live.items()
        if subscription.matches(Interval(i, s, e))
    }


CONFIGS = [
    pytest.param("hintm_hybrid", {}, id="plain-hybrid"),
    pytest.param("interval_tree", {}, id="plain-interval-tree"),
    pytest.param("naive", {}, id="plain-naive"),
    pytest.param("hintm_hybrid", {"num_shards": 4}, id="sharded-K4-serial"),
    pytest.param(
        "hintm_hybrid",
        {"num_shards": 4, "executor": "processes", "workers": 2},
        id="sharded-K4-processes",
    ),
    pytest.param(
        "hintm_hybrid",
        {"num_shards": 4, "replication_factor": 2},
        id="sharded-K4-replicated",
    ),
]


@pytest.mark.parametrize("backend,opts", CONFIGS)
def test_delta_replay_equals_requery(backend, opts):
    """The tentpole invariant, on a random interleaved workload.

    Each subscription keeps a locally folded result set; after every
    mutation (and through forced maintenance passes) the folded set must
    equal both a fresh probe of the store and the live-dict oracle.
    """
    rng = random.Random(1234)
    collection = _collection()
    store = IntervalStore.open(collection, backend, **opts)
    try:
        manager = StandingQueryManager(store, log_capacity=16)
        live = _live_oracle(collection)

        folded = {}  # subscription_id -> (subscription, acked generation, ids)
        for _ in range(15):
            start = rng.randrange(0, DOMAIN)
            result = manager.subscribe(start, start + rng.randrange(50, 1_500))
            sub = result.subscription
            assert set(result.ids) == _matching(live, sub)
            folded[sub.subscription_id] = (sub, result.generation, set(result.ids))

        next_id = 10_000
        for step in range(150):
            op = rng.random()
            if op < 0.5:
                s = rng.randrange(0, DOMAIN)
                interval = Interval(next_id, s, s + rng.randrange(1, 400))
                next_id += 1
                store.insert(interval)
                live[interval.id] = (interval.start, interval.end)
            elif op < 0.8 and live:
                victim = rng.choice(sorted(live))
                store.delete(victim)
                del live[victim]
            else:
                store.maintain(force=True)  # must emit no deltas

            if step % 10 == 9:  # fold + verify every subscription
                for sid, (sub, acked, ids) in folded.items():
                    poll = manager.poll(sid, after_generation=acked)
                    if poll.resync_required:
                        fresh = manager.resync(sid)
                        folded[sid] = (sub, fresh.generation, set(fresh.ids))
                    else:
                        for record in poll.records:
                            ids.difference_update(record.removed)
                            ids.update(record.added)
                        folded[sid] = (sub, poll.generation, ids)
                    assert folded[sid][2] == _matching(live, sub), (
                        f"subscription {sid} diverged at step {step}"
                    )
        # final cross-check against a fresh store probe
        for sid, (sub, acked, ids) in folded.items():
            q = sub.query
            assert ids == set(store.query().overlapping(q.start, q.end).ids())
        gauges = manager.gauges()
        assert gauges["subscriptions_active"] == len(folded)
        assert gauges["deltas_emitted"] > 0
    finally:
        store.close()


def test_reconnect_catch_up_is_exact():
    """A consumer that goes away mid-stream resumes from its ack exactly."""
    store = IntervalStore.open(_collection(), "hintm_hybrid", num_shards=2)
    try:
        manager = StandingQueryManager(store)
        result = manager.subscribe(0, DOMAIN)  # matches everything
        sid = result.subscription.subscription_id
        ids = set(result.ids)
        acked = result.generation

        # consume the first burst
        for i in range(5):
            store.insert(Interval(20_000 + i, 100 * i, 100 * i + 50))
        poll = manager.poll(sid, after_generation=acked)
        assert not poll.resync_required
        for record in poll.records:
            ids.difference_update(record.removed)
            ids.update(record.added)
        acked = poll.generation

        # "disconnect": more updates land un-polled, including maintenance
        for i in range(5, 12):
            store.insert(Interval(20_000 + i, 100 * i, 100 * i + 50))
        store.delete(20_001)
        store.maintain(force=True)

        # reconnect from the last ack: exact catch-up, no resync
        poll = manager.poll(sid, after_generation=acked)
        assert not poll.resync_required
        for record in poll.records:
            ids.difference_update(record.removed)
            ids.update(record.added)
        assert ids == set(store.query().overlapping(0, DOMAIN).ids())

        # polling the same ack twice is idempotent for the result set
        again = manager.poll(sid, after_generation=poll.generation)
        assert not again.records and not again.resync_required
    finally:
        store.close()


def test_log_truncation_forces_resync_then_continues():
    """Past the log bounds a stale consumer is told to resync -- never
    silently handed an inexact delta stream -- and works again after."""
    store = IntervalStore.open(_collection(), "hintm_hybrid")
    try:
        manager = StandingQueryManager(store, log_capacity=4, max_coalesced_ids=8)
        result = manager.subscribe(0, DOMAIN)
        sid = result.subscription.subscription_id
        stale_ack = result.generation

        # far more distinct updates than the log can coalesce or hold
        for i in range(100):
            store.insert(Interval(30_000 + i, 10 * i, 10 * i + 5))

        poll = manager.poll(sid, after_generation=stale_ack)
        assert poll.resync_required
        assert manager.gauges()["catchup_resyncs"] >= 1

        fresh = manager.resync(sid)
        assert set(fresh.ids) == set(store.query().overlapping(0, DOMAIN).ids())

        # the resynced log serves incremental deltas again
        store.insert(Interval(40_000, 50, 60))
        poll = manager.poll(sid, after_generation=fresh.generation)
        assert not poll.resync_required
        assert any(40_000 in record.added for record in poll.records)
    finally:
        store.close()


def test_unknown_subscription_raises():
    store = IntervalStore.open(_collection(), "hintm_hybrid")
    try:
        manager = StandingQueryManager(store)
        with pytest.raises(UnknownSubscriptionError):
            manager.poll(999)
        with pytest.raises(UnknownSubscriptionError):
            manager.resync(999)
        assert manager.unsubscribe(999) is False
    finally:
        store.close()


def test_filtered_subscriptions_route_exactly():
    """Duration/relation-filtered subscriptions only see matching deltas."""
    store = IntervalStore.open(_collection(), "hintm_hybrid")
    try:
        manager = StandingQueryManager(store)
        long_only = manager.subscribe(0, DOMAIN, min_duration=100)
        during = manager.subscribe(1_000, 2_000, relation="during")
        s_long = long_only.subscription
        s_during = during.subscription

        store.insert(Interval(50_000, 1_100, 1_150))  # short, during the range
        store.insert(Interval(50_001, 1_100, 1_900))  # long, during the range
        store.insert(Interval(50_002, 500, 3_000))    # long, contains the range

        poll = manager.poll(
            s_long.subscription_id, after_generation=long_only.generation
        )
        added = {i for r in poll.records for i in r.added}
        assert added == {50_001, 50_002}  # both long; the short one filtered

        poll = manager.poll(
            s_during.subscription_id, after_generation=during.generation
        )
        added = {i for r in poll.records for i in r.added}
        assert added == {50_000, 50_001}  # strictly inside; the container not
    finally:
        store.close()


def test_maintenance_emits_no_deltas():
    store = IntervalStore.open(_collection(), "hintm_hybrid", num_shards=2)
    try:
        manager = StandingQueryManager(store)
        result = manager.subscribe(0, DOMAIN)
        sid = result.subscription.subscription_id
        before = manager.gauges()["deltas_emitted"]
        for _ in range(3):
            store.maintain(force=True)
        poll = manager.poll(sid, after_generation=result.generation)
        assert not poll.records and not poll.resync_required
        assert manager.gauges()["deltas_emitted"] == before
        # but the acked generation still advances past the epoch bumps, so
        # the client's next ack token is current
        assert poll.generation >= result.generation
    finally:
        store.close()
