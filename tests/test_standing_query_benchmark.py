"""Acceptance benchmark for the standing-query subsystem.

The PR's bar, with S = 10,000 registered subscriptions over a TAXIS-scale
collection:

* notifying the affected subscriptions after one update through the
  interval-indexed :class:`~repro.stream.registry.SubscriptionRegistry`
  probe is >= 10x faster than the naive standing-query implementation that
  re-runs all S queries against the store and diffs each answer (the probe
  is one overlap query plus per-candidate refinement, O(affected); the
  naive path is S range queries per update);
* the indexed probe's affected set is identical to the linear scan's on
  every update, and to the set of standing queries whose re-evaluated
  answer actually changed (asserted inside the driver, surfaced here via
  the ``exact`` flags);
* the delta-delivery path stays exact under load: subscriptions folded
  from their snapshot plus polled deltas equal fresh probes of the final
  store.
"""

import pytest

from repro.bench.experiments import standing_query

NUM_SUBSCRIPTIONS = 10_000
CARDINALITY = 20_000


@pytest.fixture(scope="module")
def result():
    return standing_query(
        cardinality=CARDINALITY, num_subscriptions=NUM_SUBSCRIPTIONS
    )


def test_indexed_matching_beats_reevaluation_10x(result):
    by_mode = {r["mode"]: r for r in result["matching"]}
    indexed = by_mode["indexed registry"]
    reeval = by_mode["re-evaluate all"]
    assert indexed["subscriptions"] >= 10_000, "the bar requires S >= 10k"
    assert reeval["ms_per_update"] > 0
    ratio = indexed["speedup"]
    assert ratio >= 10.0, (
        f"indexed matching reached only {ratio:.2f}x over re-evaluating all "
        f"{indexed['subscriptions']} standing queries "
        f"({indexed['ms_per_update']:.4f} vs {reeval['ms_per_update']:.2f} "
        f"ms/update)"
    )


def test_indexed_probe_also_beats_linear_scan(result):
    by_mode = {r["mode"]: r for r in result["matching"]}
    assert (
        by_mode["indexed registry"]["ms_per_update"]
        < by_mode["linear scan"]["ms_per_update"]
    )


def test_matching_sets_are_exact(result):
    # the driver raises if the indexed affected() set ever differs from the
    # linear scan, or from the set of standing queries whose re-evaluated
    # answer changed -- `exact` records that those assertions ran
    assert result["matching"], "no matching measurements"
    assert all(r["exact"] for r in result["matching"])


def test_delivery_stays_exact_with_subscribers_attached(result):
    rows = {r["mode"]: r for r in result["delivery"]}
    attached = next(v for k, v in rows.items() if k != "plain store")
    assert attached["deltas_emitted"] > 0
    assert all(r["exact"] for r in result["delivery"])
    assert rows["plain store"]["ops_per_s"] > 0 and attached["ops_per_s"] > 0
