"""Unit tests for workload instrumentation (repro.hint.statistics)."""

import pytest

from repro.baselines.naive import NaiveIndex
from repro.hint.optimized import OptimizedHINTm
from repro.hint.statistics import collect_workload_statistics
from repro.queries.generator import QueryWorkloadConfig, generate_queries


class TestCollectWorkloadStatistics:
    def test_empty_workload_rejected(self, synthetic_collection):
        index = NaiveIndex.build(synthetic_collection)
        with pytest.raises(ValueError):
            collect_workload_statistics(index, [])

    def test_basic_aggregation(self, synthetic_collection, synthetic_queries):
        index = OptimizedHINTm(synthetic_collection, num_bits=9)
        stats = collect_workload_statistics(index, synthetic_queries[:50])
        assert stats.queries == 50
        assert stats.avg_results >= 0
        assert stats.avg_partitions_accessed >= 0
        assert 0.0 <= stats.false_hit_ratio <= 1.0

    def test_lemma4_partitions_compared(self, synthetic_collection):
        """Table 7's "avg. comp. part." row: about four for HINT^m."""
        index = OptimizedHINTm(synthetic_collection, num_bits=10)
        queries = generate_queries(
            synthetic_collection,
            QueryWorkloadConfig(count=100, extent_fraction=0.01, placement="data", seed=3),
        )
        stats = collect_workload_statistics(index, queries)
        assert stats.avg_partitions_compared <= 5.0

    def test_hint_has_lower_false_hits_than_naive(self, synthetic_collection):
        """HINT inspects far fewer non-result intervals than a scan."""
        queries = generate_queries(
            synthetic_collection, QueryWorkloadConfig(count=40, extent_fraction=0.01, seed=9)
        )
        hint_stats = collect_workload_statistics(
            OptimizedHINTm(synthetic_collection, num_bits=9), queries
        )
        naive_stats = collect_workload_statistics(
            NaiveIndex.build(synthetic_collection), queries
        )
        assert hint_stats.avg_candidates < naive_stats.avg_candidates
        assert hint_stats.false_hit_ratio <= naive_stats.false_hit_ratio
