"""Unit tests for the standing-query building blocks: DeltaLog + registry."""

import pytest

from repro.core.allen import AllenRelation
from repro.core.errors import ReproError
from repro.core.interval import Interval, Query
from repro.stream.log import DeltaLog, DeltaRecord
from repro.stream.registry import Subscription, SubscriptionRegistry, parse_relation


def _replay(base, records):
    """Fold delta records onto a base id set."""
    state = set(base)
    for record in records:
        state.difference_update(record.removed)
        state.update(record.added)
    return state


class TestDeltaRecord:
    def test_merge_cancels_add_then_remove(self):
        a = DeltaRecord(seq=0, generation=1, first_generation=1, added=(7,), removed=())
        b = DeltaRecord(seq=1, generation=2, first_generation=2, added=(), removed=(7,))
        merged = a.merge(b)
        assert merged.added == () and merged.removed == ()
        assert merged.seq == 1
        assert merged.first_generation == 1 and merged.generation == 2
        assert merged.coalesced

    def test_merge_cancels_remove_then_add(self):
        a = DeltaRecord(seq=0, generation=1, first_generation=1, added=(), removed=(7,))
        b = DeltaRecord(seq=1, generation=2, first_generation=2, added=(7,), removed=())
        merged = a.merge(b)
        assert merged.added == () and merged.removed == ()

    def test_merge_is_net_effect(self):
        a = DeltaRecord(
            seq=0, generation=1, first_generation=1, added=(1, 2), removed=(3,)
        )
        b = DeltaRecord(
            seq=1, generation=2, first_generation=2, added=(3, 4), removed=(2,)
        )
        merged = a.merge(b)
        # folding the merged record equals folding a then b, from any VALID
        # base -- one where each record's added ids are not yet live and its
        # removed ids are (the invariant the delta engine guarantees)
        for base in ({3}, {3, 5}, {3, 5, 9}):
            assert _replay(base, [merged]) == _replay(base, [a, b])


class TestDeltaLog:
    def test_append_and_since(self):
        log = DeltaLog(capacity=16)
        log.append(1, (10,), ())
        log.append(2, (), (10,))
        log.append(3, (11,), ())
        records, resync = log.since(-1)
        assert not resync
        assert [r.generation for r in records] == [1, 2, 3]
        records, resync = log.since(2)
        assert not resync
        assert [r.generation for r in records] == [3]

    def test_ack_prunes(self):
        log = DeltaLog(capacity=16)
        for g in range(1, 6):
            log.append(g, (g,), ())
        log.ack(3)
        assert len(log) == 2
        records, resync = log.since(3)
        assert not resync and [r.generation for r in records] == [4, 5]

    def test_coalescing_preserves_replay(self):
        log = DeltaLog(capacity=4)
        live = set()
        oracle_states = {0: set()}
        for g in range(1, 21):
            if g % 3 == 0 and live:
                victim = min(live)
                live.discard(victim)
                log.append(g, (), (victim,))
            else:
                live.add(g)
                log.append(g, (g,), ())
            oracle_states[g] = set(live)
        assert log.coalesce_ops > 0
        records, resync = log.since(-1)
        if not resync:
            assert _replay(set(), records) == live
        # a client acked exactly at a record boundary replays exactly
        records, resync = log.since(-1)
        boundary = records[0].generation
        tail, resync = log.since(boundary)
        assert not resync
        assert _replay(oracle_states[boundary], tail) == live

    def test_ack_inside_coalesced_span_requires_resync(self):
        log = DeltaLog(capacity=2)
        for g in range(1, 8):
            log.append(g, (g,), ())
        head = log.since(-1)[0][0] if not log.since(-1)[1] else None
        if head is not None and head.coalesced:
            inside = head.first_generation  # strictly inside (span starts before)
            _, resync = log.since(inside)
            assert resync

    def test_truncation_requires_resync(self):
        log = DeltaLog(capacity=2, max_coalesced_ids=4)
        for g in range(1, 30):
            log.append(g, (g,), ())
        assert log.truncations > 0
        _, resync = log.since(-1)
        assert resync
        # an ack past the truncation point can still be served
        last = log.last_generation
        records, resync = log.since(last)
        assert not resync and records == []

    def test_capacity_bound_holds(self):
        log = DeltaLog(capacity=8, max_coalesced_ids=100_000)
        for g in range(1, 1000):
            log.append(g, (g,), ())
        assert len(log) <= 8


def _sub(i, start, end, **kw):
    return Subscription(subscription_id=i, query=Query(start, end), **kw)


class TestSubscriptionMatching:
    def test_overlap_default(self):
        s = _sub(0, 100, 200)
        assert s.matches(Interval(1, 150, 160))
        assert s.matches(Interval(2, 200, 300))  # closed-interval touch
        assert not s.matches(Interval(3, 300, 400))

    def test_duration_bounds(self):
        s = _sub(0, 0, 1000, min_duration=10, max_duration=50)
        assert s.matches(Interval(1, 100, 120))
        assert not s.matches(Interval(2, 100, 105))  # too short
        assert not s.matches(Interval(3, 100, 200))  # too long

    def test_relation_refinement(self):
        s = _sub(0, 100, 200, relation=AllenRelation.DURING)
        assert s.matches(Interval(1, 120, 180))
        assert not s.matches(Interval(2, 50, 300))  # contains, not during

    def test_predicate(self):
        s = _sub(0, 0, 1000, predicate=lambda iv: iv.id % 2 == 0)
        assert s.matches(Interval(2, 100, 200))
        assert not s.matches(Interval(3, 100, 200))

    def test_unbounded_relations_not_prunable(self):
        assert not _sub(0, 100, 200, relation=AllenRelation.BEFORE).range_prunable
        assert not _sub(0, 100, 200, relation=AllenRelation.AFTER).range_prunable
        assert _sub(0, 100, 200, relation=AllenRelation.OVERLAPS).range_prunable


class TestParseRelation:
    def test_accepts_names_and_enums(self):
        assert parse_relation("during") is AllenRelation.DURING
        assert parse_relation("finished-by") is AllenRelation.FINISHED_BY
        assert parse_relation(AllenRelation.MEETS) is AllenRelation.MEETS
        assert parse_relation(None) is None

    def test_rejects_unknown(self):
        with pytest.raises(ReproError, match="unknown Allen relation"):
            parse_relation("sideways")


class TestSubscriptionRegistry:
    def test_linear_until_threshold(self):
        registry = SubscriptionRegistry(index_threshold=8)
        for i in range(7):
            registry.register(Query(i * 100, i * 100 + 50))
        assert not registry.indexed
        registry.register(Query(700, 750))
        assert registry.indexed

    def test_affected_matches_linear_scan(self):
        import random

        rng = random.Random(42)
        indexed = SubscriptionRegistry(index_threshold=2)
        linear = SubscriptionRegistry(index_threshold=10**9)
        for _ in range(200):
            start = rng.randrange(0, 10_000)
            end = start + rng.randrange(1, 500)
            for registry in (indexed, linear):
                registry.register(Query(start, end))
        assert indexed.indexed and not linear.indexed
        for _ in range(100):
            start = rng.randrange(0, 10_000)
            probe = Interval(0, start, start + rng.randrange(0, 300))
            got = {s.subscription_id for s in indexed.affected(probe)}
            want = {s.subscription_id for s in linear.affected(probe)}
            assert got == want

    def test_unbounded_relations_always_checked(self):
        registry = SubscriptionRegistry(index_threshold=2)
        for i in range(10):  # force the index to build
            registry.register(Query(i * 10, i * 10 + 5))
        after = registry.register(Query(5_000, 5_100), relation="after")
        # an interval entirely after the query range ("interval AFTER
        # query") matches despite never overlapping it
        probe = Interval(99, 9_000, 9_100)
        affected = {s.subscription_id for s in registry.affected(probe)}
        assert after.subscription_id in affected

    def test_unregister_removes_from_matching(self):
        registry = SubscriptionRegistry(index_threshold=2)
        subs = [registry.register(Query(0, 1_000)) for _ in range(5)]
        assert registry.unregister(subs[2].subscription_id)
        assert not registry.unregister(subs[2].subscription_id)
        probe = Interval(1, 500, 600)
        affected = {s.subscription_id for s in registry.affected(probe)}
        assert subs[2].subscription_id not in affected
        assert len(affected) == 4

    def test_registered_after_index_built_is_matched(self):
        registry = SubscriptionRegistry(index_threshold=2)
        for i in range(5):
            registry.register(Query(i * 10, i * 10 + 5))
        late = registry.register(Query(8_000, 8_100))
        affected = {
            s.subscription_id for s in registry.affected(Interval(7, 8_050, 8_060))
        }
        assert affected == {late.subscription_id}
