"""The subscription filter DSL and poller backpressure.

Covers the JSON predicate grammar (``stream.filters``) at three layers:
normalisation/compilation as pure functions, server-side enforcement on a
:class:`StandingQueryManager`, and the HTTP transport (``/subscribe`` with
a ``filter`` payload, both JSON-body and query-string encodings).  Also
covers the laggard-poller bound (``max_poller_lag``): a consumer that stops
draining gets an explicit ``resync_required`` instead of unbounded server
memory.
"""

import json

import pytest

from repro.core.interval import Interval, IntervalCollection
from repro.engine import IntervalStore
from repro.serve.client import ServeClient
from repro.serve.server import QueryServer, start_server_thread
from repro.stream.deltas import StandingQueryManager
from repro.stream.filters import (
    FilterSpecError,
    compile_filter,
    describe_filter,
    normalize_filter,
)


def _interval(start, end, interval_id=0):
    return Interval(interval_id, start, end)


class TestNormalize:
    def test_symbol_ops_canonicalise_to_names(self):
        spec = normalize_filter({"field": "duration", "op": ">=", "value": 10})
        assert spec == {"field": "duration", "op": "ge", "value": 10}

    def test_named_ops_pass_through(self):
        spec = {"field": "start", "op": "lt", "value": 5}
        assert normalize_filter(spec) == spec

    def test_canonical_form_is_json_round_trippable(self):
        spec = normalize_filter(
            {"and": [{"field": "start", "op": ">", "value": 1},
                     {"not": {"field": "end", "op": "==", "value": 9}}]}
        )
        assert json.loads(json.dumps(spec)) == spec

    @pytest.mark.parametrize("bad", [
        42,                                                   # not an object
        {"field": "colour", "op": "eq", "value": 1},          # unknown field
        {"field": "start", "op": "~=", "value": 1},           # unknown op
        {"field": "start", "op": "eq", "value": True},        # bool is not int
        {"field": "start", "op": "eq", "value": "soon"},      # non-integer
        {"field": "start", "op": "eq"},                       # missing value
        {"field": "start", "op": "eq", "value": 1, "x": 2},   # stray key
        {"and": []},                                          # empty combinator
        {"and": [{"field": "start", "op": "eq", "value": 1}],
         "or": [{"field": "start", "op": "eq", "value": 1}]},  # two combinators
    ])
    def test_grammar_violations_raise(self, bad):
        with pytest.raises(FilterSpecError):
            normalize_filter(bad)

    def test_excessive_nesting_raises(self):
        spec = {"field": "start", "op": "eq", "value": 1}
        for _ in range(40):
            spec = {"not": spec}
        with pytest.raises(FilterSpecError, match="nesting"):
            normalize_filter(spec)


class TestCompile:
    def test_duration_leaf(self):
        keep_long = compile_filter({"field": "duration", "op": ">=", "value": 100})
        assert keep_long(_interval(0, 150))
        assert not keep_long(_interval(0, 99))

    def test_boolean_combinators(self):
        spec = {
            "or": [
                {"and": [{"field": "start", "op": ">=", "value": 10},
                         {"field": "end", "op": "<", "value": 20}]},
                {"not": {"field": "duration", "op": ">", "value": 1}},
            ]
        }
        predicate = compile_filter(spec)
        assert predicate(_interval(12, 18))   # first branch
        assert predicate(_interval(500, 501))  # second branch (duration 1)
        assert not predicate(_interval(5, 50))

    def test_describe_is_readable(self):
        text = describe_filter(
            {"and": [{"field": "start", "op": ">", "value": 1},
                     {"field": "duration", "op": "<=", "value": 7}]}
        )
        assert text == "(start gt 1 and duration le 7)"


def _store(rows=8):
    collection = IntervalCollection.from_intervals(
        [Interval(i, i * 100, i * 100 + 50) for i in range(rows)]
    )
    return IntervalStore.open(collection, "hintm_hybrid")


class TestManagerEnforcement:
    def test_filtered_subscription_snapshot_and_deltas(self):
        store = _store()
        manager = StandingQueryManager(store)
        result = manager.subscribe(
            0, 10_000,
            filter_spec={"field": "duration", "op": ">=", "value": 100},
        )
        # the seed rows all have duration 50: filtered out of the snapshot
        assert result.ids == ()
        sid = result.subscription.subscription_id
        assert result.subscription.filter_spec == {
            "field": "duration", "op": "ge", "value": 100,
        }
        store.insert(Interval(900, 100, 300))  # duration 200: matches
        store.insert(Interval(901, 100, 120))  # duration 20: filtered
        poll = manager.poll(sid, after_generation=result.generation)
        added = [i for record in poll.records for i in record.added]
        assert added == [900]

    def test_invalid_filter_rejected_at_subscribe(self):
        manager = StandingQueryManager(_store())
        with pytest.raises(FilterSpecError):
            manager.subscribe(0, 100, filter_spec={"field": "nope", "op": "eq",
                                                   "value": 1})


class TestBackpressure:
    def test_laggard_poller_forced_to_resync(self):
        store = _store()
        manager = StandingQueryManager(store, max_poller_lag=4)
        result = manager.subscribe(0, 100_000)
        sid = result.subscription.subscription_id
        for k in range(10):  # never polled: lag grows past the bound
            store.insert(Interval(1_000 + k, 10, 500))
        assert manager.gauges()["backpressure_drops"] > 0
        assert manager.gauges()["slowest_poller_lag"] <= 4
        poll = manager.poll(sid, after_generation=result.generation)
        assert poll.resync_required
        # the documented recovery: resync replaces the client's world
        resynced = manager.resync(sid)
        assert set(resynced.ids) >= {1_000 + k for k in range(10)}
        # an up-to-date poller is back to exact deltas
        store.insert(Interval(2_000, 10, 500))
        poll = manager.poll(sid, after_generation=resynced.generation)
        assert not poll.resync_required
        assert [i for r in poll.records for i in r.added] == [2_000]

    def test_lag_bound_validated(self):
        from repro.core.errors import ReproError

        with pytest.raises(ReproError, match="max_poller_lag"):
            StandingQueryManager(_store(), max_poller_lag=0)


class TestOverHttp:
    @pytest.fixture()
    def served(self):
        store = _store()
        handle = start_server_thread(store, max_poller_lag=4)
        client = ServeClient(port=handle.port)
        yield store, client
        client.close()
        handle.stop()
        store.close()

    def test_subscribe_with_filter_routes_exactly(self, served):
        store, client = served
        sub = client.subscribe(
            0, 100_000,
            filter={"field": "duration", "op": ">=", "value": 100},
        )
        assert sub["filter"] == {"field": "duration", "op": "ge", "value": 100}
        assert sub["ids"] == []  # seed rows are all shorter than 100
        client.insert(900, 100, 300)
        client.insert(901, 100, 120)
        poll = client.poll_deltas(
            sub["subscription_id"], after=sub["generation"], timeout=5
        )
        assert [i for d in poll["deltas"] for i in d["added"]] == [900]

    def test_bad_filter_is_a_400(self, served):
        from repro.serve.client import ServerError

        _, client = served
        with pytest.raises(ServerError) as excinfo:
            client.subscribe(0, 100, filter={"field": "start", "op": "??",
                                             "value": 1})
        assert excinfo.value.status == 400

    def test_served_laggard_gets_resync_required(self, served):
        store, client = served
        sub = client.subscribe(0, 100_000)
        for k in range(10):
            client.insert(1_000 + k, 10, 500)
        poll = client.poll_deltas(
            sub["subscription_id"], after=sub["generation"], timeout=5
        )
        assert poll["resync_required"]
        stats = client.stats()
        assert stats["stream"]["backpressure_drops"] > 0
