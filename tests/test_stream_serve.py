"""Standing queries over the serving tier: subscribe/poll/unsubscribe HTTP
endpoints, long-poll wakeups, chunked streaming, server-restart catch-up,
stale-while-revalidate and server-side Allen relations."""

import threading
import time

import pytest

from repro.core.interval import Interval, IntervalCollection
from repro.engine import IntervalStore
from repro.serve.cache import ResultCache
from repro.serve.client import ServeClient, ServerError, StreamClient
from repro.serve.server import start_server_thread


def _collection(n=200, seed=3):
    import numpy as np

    rng = np.random.default_rng(seed)
    starts = rng.integers(0, 10_000, n)
    ends = starts + rng.integers(1, 400, n)
    return IntervalCollection.from_intervals(
        [Interval(int(i), int(s), int(e)) for i, (s, e) in enumerate(zip(starts, ends))]
    )


def _oracle(store, start, end):
    return set(store.query().overlapping(start, end).ids())


@pytest.fixture()
def served():
    store = IntervalStore.open(
        _collection(), "hintm_hybrid", num_shards=2, replication_factor=2
    )
    handle = start_server_thread(store, cache=128, streaming=True)
    client = ServeClient(port=handle.port)
    yield store, handle, client
    client.close()
    handle.stop()
    store.close()


class TestSubscribeEndpoints:
    def test_subscribe_snapshot_matches_store(self, served):
        store, handle, client = served
        response = client.subscribe(1_000, 3_000)
        assert set(response["ids"]) == _oracle(store, 1_000, 3_000)
        assert response["count"] == len(response["ids"])
        assert client.unsubscribe(response["subscription_id"])["unsubscribed"]

    def test_poll_delivers_exact_deltas(self, served):
        store, handle, client = served
        sub = client.subscribe(1_000, 3_000)
        sid, gen = sub["subscription_id"], sub["generation"]
        client.insert(90_000, 1_500, 1_600)
        client.insert(90_001, 8_000, 8_100)  # outside the subscription
        client.delete(90_000)
        poll = client.poll_deltas(sid, after=gen, timeout=5)
        assert not poll["resync_required"]
        added = [i for d in poll["deltas"] for i in d["added"]]
        removed = [i for d in poll["deltas"] for i in d["removed"]]
        assert added == [90_000] and removed == [90_000]

    def test_long_poll_woken_by_concurrent_insert(self, served):
        store, handle, client = served
        sub = client.subscribe(1_000, 3_000)
        sid, gen = sub["subscription_id"], sub["generation"]
        out = {}

        def poller():
            with ServeClient(port=handle.port) as own:
                t0 = time.monotonic()
                out["poll"] = own.poll_deltas(sid, after=gen, timeout=10)
                out["waited"] = time.monotonic() - t0

        thread = threading.Thread(target=poller)
        thread.start()
        time.sleep(0.3)
        client.insert(91_000, 2_000, 2_100)
        thread.join(timeout=5)
        assert out["poll"]["deltas"][0]["added"] == [91_000]
        assert out["waited"] < 5  # woken, not timed out

    def test_empty_long_poll_times_out(self, served):
        store, handle, client = served
        sub = client.subscribe(1_000, 3_000)
        t0 = time.monotonic()
        poll = client.poll_deltas(
            sub["subscription_id"], after=sub["generation"], timeout=0.5
        )
        assert not poll["deltas"] and not poll["resync_required"]
        assert 0.4 < time.monotonic() - t0 < 3

    def test_unknown_subscription_is_404_with_resync(self, served):
        store, handle, client = served
        with pytest.raises(ServerError) as excinfo:
            client.poll_deltas(12_345, after=0, timeout=1)
        assert excinfo.value.status == 404
        assert excinfo.value.payload["resync_required"] is True

    def test_stats_exposes_subscription_gauges(self, served):
        store, handle, client = served
        sub = client.subscribe(1_000, 3_000)
        client.insert(92_000, 2_000, 2_050)
        stats = client.stats()
        assert stats["stream"]["subscriptions_active"] == 1.0
        assert stats["stream"]["deltas_emitted"] >= 1.0
        # the gauges also surface through instrumented queries
        response = client.query(1_000, 3_000, stats=True)
        assert response["stats"]["extra"]["subscriptions_active"] == 1.0
        client.unsubscribe(sub["subscription_id"])


class TestStreamClient:
    def test_fold_matches_oracle(self, served):
        store, handle, client = served
        with StreamClient(port=handle.port) as sc:
            sc.subscribe(1_000, 3_000)
            client.insert(93_000, 1_500, 1_550)
            client.delete(int(next(iter(_oracle(store, 1_000, 3_000) - {93_000}))))
            sc.poll(timeout=5)
            assert sc.ids() == _oracle(store, 1_000, 3_000)
            sc.unsubscribe()

    def test_chunked_streaming_folds_live(self, served):
        store, handle, client = served
        with StreamClient(port=handle.port) as sc:
            sc.subscribe(1_000, 3_000)
            events = []

            def consume():
                for event in sc.stream(timeout=2.5):
                    events.append(event)

            thread = threading.Thread(target=consume)
            thread.start()
            time.sleep(0.3)
            client.insert(94_000, 2_500, 2_600)
            time.sleep(0.3)
            client.delete(94_000)
            thread.join(timeout=10)
            assert len(events) >= 2
            assert sc.ids() == _oracle(store, 1_000, 3_000)
            sc.unsubscribe()

    def test_streaming_disabled_is_rejected(self):
        store = IntervalStore.open(_collection(), "hintm_hybrid")
        handle = start_server_thread(store, cache=0)  # streaming off
        try:
            with StreamClient(port=handle.port) as sc:
                sc.subscribe(0, 10_000)
                with pytest.raises(ServerError) as excinfo:
                    for _ in sc.stream(timeout=1):
                        pass
                assert excinfo.value.status == 400
        finally:
            handle.stop()
            store.close()

    def test_resync_after_log_truncation(self):
        store = IntervalStore.open(_collection(), "hintm_hybrid")
        from repro.stream import StandingQueryManager

        manager = StandingQueryManager(store, log_capacity=4, max_coalesced_ids=8)
        handle = start_server_thread(store, cache=0, stream=manager)
        try:
            writer = ServeClient(port=handle.port)
            with StreamClient(port=handle.port) as sc:
                sc.subscribe(0, 100_000)
                for i in range(100):  # blow the log while not polling
                    writer.insert(95_000 + i, 10 * i, 10 * i + 5)
                event = sc.poll(timeout=5)
                assert event.get("resynced") is True
                assert sc.resyncs == 1
                assert sc.ids() == _oracle(store, 0, 100_000)
                # incremental delivery works again after the resync
                writer.insert(99_999, 50, 60)
                sc.poll(timeout=5)
                assert 99_999 in sc.ids()
            writer.close()
        finally:
            handle.stop()
            store.close()


class TestRestartCatchUp:
    def test_restart_with_same_manager_is_exact(self):
        """The delta-correctness acceptance gate: catch-up across a server
        restart delivers exactly the missed deltas, no resync."""
        store = IntervalStore.open(_collection(), "hintm_hybrid", num_shards=2)
        handle = start_server_thread(store, cache=64)
        sc = StreamClient(port=handle.port)
        try:
            sc.subscribe(0, 100_000)
            with ServeClient(port=handle.port) as writer:
                writer.insert(96_000, 500, 600)
            sc.poll(timeout=5)
            manager = handle.server.stream
            handle.stop()

            # updates land while the server is down (straight on the store;
            # the manager stays attached and keeps logging deltas)
            store.insert(Interval(96_001, 700, 800))
            store.delete(96_000)
            store.maintain(force=True)

            handle = start_server_thread(store, cache=64, stream=manager)
            sc2 = StreamClient(port=handle.port)
            # adopt the old identity: same subscription, same ack
            sc2._subscription_id = sc.subscription_id
            sc2._generation = sc.generation
            sc2._ids = set(sc.ids())
            poll = sc2.poll(timeout=5)
            assert poll.get("resynced") is None  # exact catch-up, no resync
            assert sc2.ids() == _oracle(store, 0, 100_000)
            sc2.close()
        finally:
            sc.close()
            handle.stop()
            store.close()


class TestStaleWhileRevalidate:
    def test_stale_served_once_then_fresh(self):
        # sharded: its index carries stats_extras, so the gauge assertion at
        # the end can see cache_stale_served ride QueryStats.extra
        store = IntervalStore.open(_collection(), "hintm_hybrid", num_shards=2)
        cache = ResultCache(capacity=64, stale_while_revalidate=True)
        handle = start_server_thread(store, cache=cache)
        try:
            with ServeClient(port=handle.port) as client:
                fresh = client.query(1_000, 3_000)
                client.insert(97_000, 1_500, 1_550)
                stale = client.query(1_000, 3_000)  # SWR: pre-insert body
                assert set(stale["ids"]) == set(fresh["ids"])
                assert 97_000 not in stale["ids"]
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline:
                    current = client.query(1_000, 3_000)
                    if 97_000 in current["ids"]:
                        break
                    time.sleep(0.05)
                assert 97_000 in current["ids"]
                stats = client.stats()
                assert stats["cache"]["stale_served"] >= 1
                assert stats["cache"]["stale_while_revalidate"] is True
                # the gauge rides QueryStats.extra too
                probe = client.query(1_000, 3_000, stats=True)
                assert probe["stats"]["extra"]["cache_stale_served"] >= 1.0
        finally:
            handle.stop()
            store.close()

    def test_swr_off_by_default(self, served):
        store, handle, client = served
        client.query(1_000, 3_000)
        client.insert(98_000, 1_500, 1_550)
        response = client.query(1_000, 3_000)
        assert 98_000 in response["ids"]  # no stale serving without opt-in
        assert client.stats()["cache"]["stale_while_revalidate"] is False


class TestServerSideRelations:
    def test_query_relation_matches_builder(self, served):
        from repro.stream import parse_relation

        store, handle, client = served
        for relation in ("during", "overlaps", "contains", "before"):
            response = client.query(1_000, 4_000, relation=relation)
            expected = set(
                store.query()
                .overlapping(1_000, 4_000)
                .relation(parse_relation(relation))
                .ids()
            )
            assert set(response["ids"]) == expected
            assert response["relation"] == relation

    def test_query_stats_payload(self, served):
        store, handle, client = served
        response = client.query(1_000, 4_000, stats=True)
        stats = response["stats"]
        assert stats["results"] == response["count"]
        assert stats["comparisons"] >= 0
        assert "partitions_accessed" in stats

    def test_batch_relation_and_stats(self, served):
        from repro.stream import parse_relation

        store, handle, client = served
        results = client.batch(
            [(1_000, 2_000), (3_000, 4_000)], relation="during", stats=True
        )
        assert len(results) == 2
        during = parse_relation("during")
        for (start, end), result in zip([(1_000, 2_000), (3_000, 4_000)], results):
            expected = set(
                store.query().overlapping(start, end).relation(during).ids()
            )
            assert set(result["ids"]) == expected
            assert result["relation"] == "during"
            assert result["stats"]["results"] == result["count"]

    def test_unknown_relation_is_400(self, served):
        store, handle, client = served
        with pytest.raises(ServerError) as excinfo:
            client.query(0, 100, relation="sideways")
        assert excinfo.value.status == 400

    def test_relation_results_not_cross_cached(self, served):
        """relation/stats variants get distinct cache keys."""
        store, handle, client = served
        plain = client.query(1_000, 4_000)
        during = client.query(1_000, 4_000, relation="during")
        plain2 = client.query(1_000, 4_000)  # cached: must still be plain
        assert set(plain2["ids"]) == set(plain["ids"])
        assert set(during["ids"]) <= set(plain["ids"])
