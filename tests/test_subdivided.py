"""Unit tests for SubdividedHINTm (paper Section 4.1)."""

import pytest

from repro.baselines.naive import NaiveIndex
from repro.core.domain import Domain
from repro.core.errors import DomainError
from repro.core.interval import Interval, IntervalCollection, Query
from repro.hint.subdivided import SubdividedHINTm

ALL_VARIANTS = [
    pytest.param(False, False, id="base-subs"),
    pytest.param(True, False, id="subs+sort"),
    pytest.param(False, True, id="subs+sopt"),
    pytest.param(True, True, id="subs+sort+sopt"),
]


class TestConstruction:
    def test_invalid_bits(self, synthetic_collection):
        with pytest.raises(DomainError):
            SubdividedHINTm(synthetic_collection, num_bits=0)

    def test_mismatched_domain(self, synthetic_collection):
        with pytest.raises(DomainError):
            SubdividedHINTm(synthetic_collection, num_bits=5, domain=Domain.identity(9))

    def test_flags_exposed(self, synthetic_collection):
        index = SubdividedHINTm(
            synthetic_collection, num_bits=6, sort_subdivisions=False, storage_optimization=True
        )
        assert index.sort_subdivisions is False
        assert index.storage_optimization is True
        assert index.num_levels == 7

    def test_replication_factor(self, synthetic_collection):
        index = SubdividedHINTm(synthetic_collection, num_bits=8)
        assert 1.0 <= index.replication_factor <= 2 * 9

    def test_subdivision_placement(self):
        """Originals/replicas end-inside/end-after placement for the paper's [5, 9]."""
        data = IntervalCollection.from_intervals([Interval(0, 5, 9)])
        index = SubdividedHINTm(data, num_bits=4, domain=Domain.identity(4))
        # original at P(4,5): the interval ends after that unit partition
        partition = index._levels[4][5]
        assert partition.o_aft.ids == [0]
        # replica at P(3,3) = [6,7]: ends after it
        assert index._levels[3][3].r_aft.ids == [0]
        # replica at P(3,4) = [8,9]: ends inside it
        assert index._levels[3][4].r_in.ids == [0]


class TestStorageOptimization:
    def test_sopt_reduces_memory(self, books_like_collection):
        """Section 4.1.2: dropping unneeded endpoint columns shrinks the index."""
        full = SubdividedHINTm(
            books_like_collection, num_bits=8, storage_optimization=False
        )
        optimized = SubdividedHINTm(
            books_like_collection, num_bits=8, storage_optimization=True
        )
        assert optimized.memory_bytes() < full.memory_bytes()

    def test_sopt_never_stores_unneeded_columns(self, synthetic_collection):
        index = SubdividedHINTm(synthetic_collection, num_bits=8, storage_optimization=True)
        for level in index._levels:
            for partition in level.values():
                assert partition.o_aft.ends == []
                assert partition.r_in.starts == []
                assert partition.r_aft.starts == []
                assert partition.r_aft.ends == []


class TestQueryCorrectness:
    @pytest.mark.parametrize("sort_flag,sopt_flag", ALL_VARIANTS)
    def test_matches_naive(
        self, synthetic_collection, synthetic_queries, sort_flag, sopt_flag
    ):
        index = SubdividedHINTm(
            synthetic_collection,
            num_bits=8,
            sort_subdivisions=sort_flag,
            storage_optimization=sopt_flag,
        )
        naive = NaiveIndex.build(synthetic_collection)
        for q in synthetic_queries[:60]:
            assert sorted(index.query(q)) == sorted(naive.query(q))

    @pytest.mark.parametrize("sort_flag,sopt_flag", ALL_VARIANTS)
    def test_matches_naive_on_long_intervals(
        self, books_like_collection, sort_flag, sopt_flag
    ):
        index = SubdividedHINTm(
            books_like_collection,
            num_bits=7,
            sort_subdivisions=sort_flag,
            storage_optimization=sopt_flag,
        )
        naive = NaiveIndex.build(books_like_collection)
        lo, hi = books_like_collection.span()
        span = hi - lo
        for i in range(20):
            start = lo + i * span // 20
            q = Query(start, min(hi, start + span // 200))
            assert sorted(index.query(q)) == sorted(naive.query(q))

    def test_no_duplicates(self, synthetic_collection, synthetic_queries):
        index = SubdividedHINTm(synthetic_collection, num_bits=8)
        for q in synthetic_queries[:30]:
            results = index.query(q)
            assert len(results) == len(set(results))

    def test_all_variants_agree(self, taxis_like_collection):
        variants = [
            SubdividedHINTm(
                taxis_like_collection, num_bits=9, sort_subdivisions=s, storage_optimization=o
            )
            for s, o in [(False, False), (True, False), (False, True), (True, True)]
        ]
        lo, hi = taxis_like_collection.span()
        span = hi - lo
        for i in range(15):
            q = Query(lo + i * span // 15, lo + i * span // 15 + span // 300)
            reference = sorted(variants[0].query(q))
            for variant in variants[1:]:
                assert sorted(variant.query(q)) == reference


class TestSorting:
    def test_sorting_reduces_comparisons(self, books_like_collection):
        """Section 4.1.1: sorted subdivisions allow early termination."""
        unsorted_index = SubdividedHINTm(
            books_like_collection, num_bits=5, sort_subdivisions=False
        )
        sorted_index = SubdividedHINTm(
            books_like_collection, num_bits=5, sort_subdivisions=True
        )
        lo, hi = books_like_collection.span()
        span = hi - lo
        total_unsorted = total_sorted = 0
        for i in range(20):
            q = Query(lo + i * span // 25, lo + i * span // 25 + span // 100)
            _, stats_u = unsorted_index.query_with_stats(q)
            _, stats_s = sorted_index.query_with_stats(q)
            total_unsorted += stats_u.comparisons
            total_sorted += stats_s.comparisons
        assert total_sorted < total_unsorted

    def test_insert_after_build_triggers_resort(self, synthetic_collection):
        index = SubdividedHINTm(synthetic_collection, num_bits=8, sort_subdivisions=True)
        naive = NaiveIndex.build(synthetic_collection)
        lo, hi = synthetic_collection.span()
        new = Interval(5_000_000, lo + 100, lo + 500)
        index.insert(new)
        naive.insert(new)
        q = Query(lo + 50, lo + 1000)
        assert sorted(index.query(q)) == sorted(naive.query(q))


class TestUpdates:
    def test_delete(self, synthetic_collection):
        index = SubdividedHINTm(synthetic_collection, num_bits=8)
        victim = int(synthetic_collection.ids[5])
        assert index.delete(victim) is True
        lo, hi = synthetic_collection.span()
        assert victim not in index.query(Query(lo, hi))
        assert index.delete(victim) is False

    def test_insert_many_then_match_naive(self, synthetic_collection):
        index = SubdividedHINTm(synthetic_collection, num_bits=8)
        naive = NaiveIndex.build(synthetic_collection)
        lo, hi = synthetic_collection.span()
        step = (hi - lo) // 50
        for i in range(40):
            interval = Interval(9_000_000 + i, lo + i * step, lo + i * step + 2 * step)
            index.insert(interval)
            naive.insert(interval)
        for i in range(0, 50, 5):
            q = Query(lo + i * step, lo + (i + 3) * step)
            assert sorted(index.query(q)) == sorted(naive.query(q))
