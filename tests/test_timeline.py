"""Unit tests for the timeline index baseline."""

import pytest

from repro.baselines.naive import NaiveIndex
from repro.baselines.timeline import TimelineIndex
from repro.core.interval import Interval, IntervalCollection, Query


class TestTimelineStructure:
    def test_invalid_checkpoints(self, tiny_collection):
        with pytest.raises(ValueError):
            TimelineIndex(tiny_collection, num_checkpoints=0)

    def test_checkpoint_count_close_to_requested(self, synthetic_collection):
        index = TimelineIndex(synthetic_collection, num_checkpoints=25)
        assert 1 <= index.num_checkpoints <= 26 + 1

    def test_memory_includes_checkpoints(self, synthetic_collection):
        few = TimelineIndex(synthetic_collection, num_checkpoints=2)
        many = TimelineIndex(synthetic_collection, num_checkpoints=200)
        assert many.memory_bytes() > few.memory_bytes()

    def test_empty_collection(self):
        index = TimelineIndex(IntervalCollection.empty(), num_checkpoints=5)
        assert len(index) == 0
        assert index.query(Query(0, 10)) == []


class TestTimelineQueries:
    @pytest.mark.parametrize("num_checkpoints", [1, 7, 60])
    def test_matches_naive(self, synthetic_collection, synthetic_queries, num_checkpoints):
        index = TimelineIndex(synthetic_collection, num_checkpoints=num_checkpoints)
        naive = NaiveIndex.build(synthetic_collection)
        for q in synthetic_queries[:50]:
            assert sorted(index.query(q)) == sorted(naive.query(q))

    def test_stabbing_matches_active_set(self, tiny_collection):
        index = TimelineIndex(tiny_collection, num_checkpoints=4)
        naive = NaiveIndex.build(tiny_collection)
        for point in range(0, 16):
            assert sorted(index.active_at(point)) == sorted(naive.stab(point))

    def test_interval_ending_at_query_start_is_reported(self):
        data = IntervalCollection.from_intervals([Interval(0, 1, 5)])
        index = TimelineIndex(data, num_checkpoints=3)
        assert index.query(Query(5, 9)) == [0]

    def test_interval_starting_at_query_end_is_reported(self):
        data = IntervalCollection.from_intervals([Interval(0, 9, 12)])
        index = TimelineIndex(data, num_checkpoints=3)
        assert index.query(Query(5, 9)) == [0]

    def test_no_duplicates(self, synthetic_collection, synthetic_queries):
        index = TimelineIndex(synthetic_collection, num_checkpoints=30)
        for q in synthetic_queries[:30]:
            results = index.query(q)
            assert len(results) == len(set(results))


class TestTimelineUpdates:
    def test_insert_visible_after_lazy_rebuild(self, tiny_collection):
        index = TimelineIndex(tiny_collection, num_checkpoints=4)
        index.insert(Interval(80, 2, 4))
        assert 80 in index.query(Query(3, 3))
        assert len(index) == len(tiny_collection) + 1

    def test_delete(self, tiny_collection):
        index = TimelineIndex(tiny_collection, num_checkpoints=4)
        assert index.delete(1) is True
        assert 1 not in index.query(Query(0, 15))
        assert index.delete(1) is False

    def test_mixed_updates_match_naive(self, synthetic_collection):
        index = TimelineIndex(synthetic_collection, num_checkpoints=20)
        naive = NaiveIndex.build(synthetic_collection)
        lo, hi = synthetic_collection.span()
        step = max(1, (hi - lo) // 40)
        for i in range(20):
            interval = Interval(2_000_000 + i, lo + i * step, lo + i * step + 3 * step)
            index.insert(interval)
            naive.insert(interval)
        for sid in list(synthetic_collection.ids[:10]):
            assert index.delete(int(sid)) == naive.delete(int(sid))
        for i in range(0, 40, 3):
            q = Query(lo + i * step, lo + (i + 2) * step)
            assert sorted(index.query(q)) == sorted(naive.query(q))
