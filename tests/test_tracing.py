"""Cross-tier tracing: one connected span tree from router to kernel worker.

The observability PR's correctness matrix:

* the tracing primitives themselves -- span nesting, tree assembly,
  header round-trips, absorb's trace-id re-stamping, and the explicit
  thread hand-off (:func:`repro.obs.tracing.bind`);
* kernel span propagation across **fork and spawn** process pools: span
  records built worker-side travel back inside task results and land in
  the submitting trace, parented under ``kernel_dispatch``;
* per-worker healing stays traced: a SIGKILLed worker's retry round shows
  up as a ``kernel_retry`` child span whose answers still match the
  serial oracle;
* a query routed through a :class:`ClusterRouter` over two HTTP shard
  servers yields ONE connected span tree with a single shared trace id --
  router root, per-shard probe spans, the shard servers' own
  ``server:/shard-batch`` subtrees, down to the kernel task spans;
* ``/metrics`` parses as Prometheus text on all three server surfaces
  (query server, shard server, router admin) and ``/stats`` is a view
  over the same registry snapshot.
"""

import multiprocessing
import os
import random
import signal
import threading
import time
import urllib.request

import pytest

from repro.core.interval import HAS_SHARED_MEMORY, Interval, IntervalCollection, Query
from repro.engine import IntervalStore, ProcessExecutor, ShardedIndex
from repro.obs import parse_prometheus_text, tracing


def _collection(n=300, seed=11):
    rng = random.Random(seed)
    intervals = []
    for i in range(n):
        start = rng.randrange(0, 10_000)
        end = start + rng.randrange(1, 2_000)
        intervals.append(Interval(i, start, end))
    return IntervalCollection.from_intervals(intervals)


def _queries(collection, n=20, seed=5):
    rng = random.Random(seed)
    lo, hi = (int(v) for v in collection.span())
    return [
        Query(start, start + rng.randrange(0, (hi - lo) // 2))
        for start in (rng.randrange(lo, hi) for _ in range(n))
    ]


def _flatten(nodes):
    for node in nodes:
        yield node
        yield from _flatten(node["children"])


# --------------------------------------------------------------------------- #
# primitives
# --------------------------------------------------------------------------- #
class TestTracePrimitives:
    def test_span_nesting_builds_one_tree(self):
        trace = tracing.Trace()
        with tracing.start_span(trace, "root"):
            with tracing.span("child", k=1):
                with tracing.span("grandchild"):
                    pass
            with tracing.span("sibling"):
                pass
        tree = trace.tree()
        assert [node["name"] for node in tree] == ["root"]
        children = [node["name"] for node in tree[0]["children"]]
        assert children == ["child", "sibling"]
        assert tree[0]["children"][0]["children"][0]["name"] == "grandchild"
        assert {span["trace_id"] for span in trace.spans()} == {trace.trace_id}

    def test_span_is_noop_without_active_trace(self):
        with tracing.span("orphan") as record:
            assert record is None
        assert tracing.current() is None

    def test_absorb_restamps_foreign_trace_ids(self):
        trace = tracing.Trace()
        with tracing.start_span(trace, "root") as root:
            foreign = tracing.new_span_record("someone-else", root["span_id"], "remote")
            trace.absorb([foreign, {"not": "a span"}, None])
        spans = trace.spans()
        assert {span["trace_id"] for span in spans} == {trace.trace_id}
        tree = trace.tree()
        assert [c["name"] for c in tree[0]["children"]] == ["remote"]

    def test_header_round_trip(self):
        trace = tracing.Trace()
        headers = tracing.headers_for(trace, "abc123")
        assert tracing.context_from_headers(headers) == (trace.trace_id, "abc123")
        assert tracing.context_from_headers({}) is None
        assert tracing.context_from_headers(None) is None

    def test_bind_carries_context_across_threads(self):
        trace = tracing.Trace()
        with tracing.start_span(trace, "root") as root:
            ctx = (trace, root["span_id"])

            def work():
                with tracing.span("threaded"):
                    pass

            thread = threading.Thread(target=tracing.bind(ctx, work))
            thread.start()
            thread.join()
        tree = trace.tree()
        assert [c["name"] for c in tree[0]["children"]] == ["threaded"]
        # bind(None, fn) is the untraced pass-through
        sentinel = object()
        assert tracing.bind(None, lambda: sentinel)() is sentinel


# --------------------------------------------------------------------------- #
# kernel span propagation across process pools
# --------------------------------------------------------------------------- #
@pytest.mark.skipif(not HAS_SHARED_MEMORY, reason="no multiprocessing.shared_memory")
class TestKernelSpanPropagation:
    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_worker_spans_travel_back_from_both_start_methods(self, method):
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {method} unavailable")
        collection = _collection()
        queries = _queries(collection)
        with ProcessExecutor(2, start_method=method) as executor:
            index = ShardedIndex(
                collection, backend="naive", num_shards=4, executor=executor
            )
            try:
                trace = tracing.Trace()
                with tracing.start_span(trace, "test_root"):
                    answers = index.query_batch(queries)
                for query, ids in zip(queries, answers):
                    assert sorted(ids) == sorted(collection.query_ids(query).tolist())
            finally:
                index.close()
        spans = trace.spans()
        assert {span["trace_id"] for span in spans} == {trace.trace_id}
        dispatch = [s for s in spans if s["name"] == "kernel_dispatch"]
        assert len(dispatch) == 1
        kernel = [s for s in spans if s["name"].startswith("kernel:")]
        assert kernel, "worker-side kernel spans must ship back in task results"
        assert {s["parent_id"] for s in kernel} == {dispatch[0]["span_id"]}
        pids = {s["tags"]["pid"] for s in kernel}
        assert pids and os.getpid() not in pids, "kernel spans must be worker-side"
        for span in kernel:
            assert span["tags"]["queries"] > 0

    def test_sigkilled_worker_retry_is_a_child_span(self):
        collection = _collection()
        queries = _queries(collection)
        expected = [sorted(collection.query_ids(q).tolist()) for q in queries]
        executor = ProcessExecutor(2)
        index = ShardedIndex(
            collection, backend="naive", num_shards=4, executor=executor
        )
        try:
            index.query_count_batch(queries)  # warm the pool
            pids = list(index.worker_residencies().keys())
            assert pids, "expected worker residencies after a warm batch"
            os.kill(pids[0], signal.SIGKILL)
            time.sleep(0.2)
            trace = tracing.Trace()
            with tracing.start_span(trace, "test_root"):
                answers = index.query_batch(queries)
            assert [sorted(ids) for ids in answers] == expected
            assert index.kernel_retries > 0
            assert not index._fanout_disabled
        finally:
            index.close()
            executor.close()
        spans = trace.spans()
        assert {span["trace_id"] for span in spans} == {trace.trace_id}
        retries = [s for s in spans if s["name"] == "kernel_retry"]
        assert retries, "the retry round must appear as its own span"
        dispatch_ids = {s["span_id"] for s in spans if s["name"] == "kernel_dispatch"}
        assert {s["parent_id"] for s in retries} <= dispatch_ids
        # the resubmitted tasks' worker spans hang off the retry span
        retry_ids = {s["span_id"] for s in retries}
        retried_kernels = [
            s
            for s in spans
            if s["name"].startswith("kernel:") and s["parent_id"] in retry_ids
        ]
        assert retried_kernels, "retried kernel tasks must parent under kernel_retry"


# --------------------------------------------------------------------------- #
# the acceptance path: router -> HTTP shards -> kernels, one tree
# --------------------------------------------------------------------------- #
@pytest.mark.skipif(not HAS_SHARED_MEMORY, reason="no multiprocessing.shared_memory")
class TestClusterTraceEndToEnd:
    @pytest.fixture()
    def cluster(self):
        from repro.cluster import ClusterTopology, start_shard_server_thread
        from repro.cluster.router import ClusterRouter
        from repro.engine.sharding import ShardPlan, shard_mask

        collection = _collection(n=400, seed=29)
        plan = ShardPlan.for_collection(collection, 2)
        handles, executors, addresses = [], [], []
        for shard in range(plan.num_shards):
            rows = collection.take(shard_mask(collection, plan.cuts, shard))
            executor = ProcessExecutor(2)
            executors.append(executor)
            store = IntervalStore.open(
                rows, "naive", num_shards=2, executor=executor
            )
            handle = start_shard_server_thread(
                store, host="127.0.0.1", port=0, shard_id=shard
            )
            handles.append(handle)
            addresses.append([("127.0.0.1", handle.port)])
        topology = ClusterTopology.build(plan.cuts, addresses)
        router = ClusterRouter(topology, slow_threshold=0.0)
        try:
            yield collection, router, handles
        finally:
            router.close()
            for handle in handles:
                handle.stop()
            for executor in executors:
                executor.close()

    def test_routed_query_yields_one_connected_tree(self, cluster):
        collection, router, _ = cluster
        lo, hi = (int(v) for v in collection.span())
        pairs = [(lo, hi), (lo + 100, lo + 500)]
        answers = router.batch(pairs, count_only=False)
        for (start, end), answer in zip(pairs, answers):
            expected = sorted(
                collection.query_ids(Query(start, end)).tolist()
            )
            assert sorted(answer["ids"]) == expected

        trace = router.last_trace
        assert trace is not None
        spans = trace.spans()
        assert {span["trace_id"] for span in spans} == {trace.trace_id}, (
            "every tier must stamp the router's trace id"
        )
        tree = trace.tree()
        assert len(tree) == 1, "one routed batch == one connected span tree"
        root = tree[0]
        assert root["name"] == "router_batch"
        flat = list(_flatten(tree))
        names = [node["name"] for node in flat]
        probes = [node for node in flat if node["name"] == "shard_probe"]
        assert {node["tags"]["shard"] for node in probes} == {0, 1}
        assert "plan" in names and "merge" in names
        # each probe subtree carries the remote server's execution spans
        for probe in probes:
            probe_names = [node["name"] for node in _flatten([probe])]
            assert "server:/shard-batch" in probe_names
            assert any(name.startswith("kernel:") for name in probe_names), (
                f"shard {probe['tags']['shard']} subtree lost its kernel spans"
            )
        # the slow log (threshold 0) captured the same tree
        entries = router.slow_log.entries()
        assert entries and entries[0]["trace_id"] == trace.trace_id

    def test_metrics_parse_on_all_three_server_surfaces(self, cluster):
        from repro.serve.client import ServeClient
        from repro.serve.server import start_server_thread

        collection, router, handles = cluster
        router.batch([(0, 5_000)])

        # shard servers
        for handle in handles:
            client = ServeClient(port=handle.port)
            try:
                samples = parse_prometheus_text(client.metrics())
            finally:
                client.close()
            assert "repro_requests_total" in samples
            assert "repro_shard_id" in samples

        # router admin surface
        admin = router.start_admin()
        assert router.start_admin() is admin  # idempotent
        base = f"http://{admin.host}:{admin.port}"
        with urllib.request.urlopen(f"{base}/metrics") as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            samples = parse_prometheus_text(response.read().decode())
        assert samples["repro_router_queries_total"] >= 1
        assert samples["repro_router_probes_total"] >= 1

        # single-node query server
        store = IntervalStore.open(collection, "hintm_opt")
        handle = start_server_thread(store, host="127.0.0.1", port=0)
        try:
            client = ServeClient(port=handle.port)
            try:
                client.query(0, 1_000)
                samples = parse_prometheus_text(client.metrics())
                assert samples["repro_queries_total"] >= 1
                assert any(
                    name.startswith("repro_request_seconds_bucket")
                    for name in samples
                )
            finally:
                client.close()
        finally:
            handle.stop()
            store.close()


# --------------------------------------------------------------------------- #
# /stats is a named view over the registry snapshot
# --------------------------------------------------------------------------- #
class TestStatsIsRegistrySnapshot:
    def test_stats_counters_equal_snapshot_values(self):
        from repro.serve.client import ServeClient
        from repro.serve.server import start_server_thread

        store = IntervalStore.open(_collection(), "hintm_opt")
        handle = start_server_thread(store, host="127.0.0.1", port=0)
        try:
            client = ServeClient(port=handle.port)
            try:
                client.query(0, 4_000)
                client.batch([(10, 60), (100, 900)])
                stats = client.stats()
                snapshot = handle.server.metrics.snapshot()
            finally:
                client.close()
        finally:
            handle.stop()
            store.close()
        assert stats["queries"] == snapshot["repro_queries_total"]
        assert stats["batches"] == snapshot["repro_batches_total"]
        assert stats["requests"] == snapshot["repro_requests_total"]
        assert stats["cache"]["hits"] == snapshot["repro_cache_hits_total"]
        assert stats["cache"]["misses"] == snapshot["repro_cache_misses_total"]
        for op in ("query", "batch"):
            assert stats["latency"][op]["count"] >= 1
            assert stats["latency"][op]["p99"] >= stats["latency"][op]["p50"]
