"""Unit tests for the hybrid update setting (paper Sections 3.4 / 4.4)."""

import pytest

from repro.baselines.naive import NaiveIndex
from repro.core.interval import Interval, Query
from repro.hint.updates import HybridHINTm
from repro.queries.generator import QueryWorkloadConfig, generate_queries
from repro.queries.workload import Operation, generate_mixed_workload


class TestHybridBasics:
    def test_initial_state(self, synthetic_collection):
        hybrid = HybridHINTm(synthetic_collection, num_bits=8)
        assert len(hybrid) == len(synthetic_collection)
        assert hybrid.delta_size == 0
        assert hybrid.rebuilds == 0
        assert hybrid.num_bits == 8

    def test_insert_goes_to_delta(self, synthetic_collection):
        hybrid = HybridHINTm(synthetic_collection, num_bits=8)
        lo, _ = synthetic_collection.span()
        hybrid.insert(Interval(10_000_000, lo, lo + 10))
        assert hybrid.delta_size == 1
        assert len(hybrid) == len(synthetic_collection) + 1

    def test_query_sees_both_components(self, synthetic_collection):
        hybrid = HybridHINTm(synthetic_collection, num_bits=8)
        naive = NaiveIndex.build(synthetic_collection)
        lo, hi = synthetic_collection.span()
        new = Interval(10_000_001, lo + 5, lo + 100)
        hybrid.insert(new)
        naive.insert(new)
        q = Query(lo, lo + 50)
        assert sorted(hybrid.query(q)) == sorted(naive.query(q))

    def test_delete_from_main_and_delta(self, synthetic_collection):
        hybrid = HybridHINTm(synthetic_collection, num_bits=8)
        lo, hi = synthetic_collection.span()
        new = Interval(10_000_002, lo, lo + 20)
        hybrid.insert(new)
        assert hybrid.delete(10_000_002) is True          # delta
        assert hybrid.delete(int(synthetic_collection.ids[0])) is True   # main
        assert hybrid.delete(123_456_789) is False
        results = hybrid.query(Query(lo, hi))
        assert 10_000_002 not in results
        assert int(synthetic_collection.ids[0]) not in results

    def test_memory_bytes(self, synthetic_collection):
        hybrid = HybridHINTm(synthetic_collection, num_bits=8)
        assert hybrid.memory_bytes() > 0


class TestRebuild:
    def test_manual_rebuild_merges_delta(self, synthetic_collection):
        hybrid = HybridHINTm(synthetic_collection, num_bits=8)
        lo, hi = synthetic_collection.span()
        for i in range(20):
            hybrid.insert(Interval(20_000_000 + i, lo + i, lo + i + 50))
        hybrid.delete(int(synthetic_collection.ids[1]))
        before = sorted(hybrid.query(Query(lo, hi)))
        hybrid.rebuild()
        assert hybrid.delta_size == 0
        assert hybrid.rebuilds == 1
        assert sorted(hybrid.query(Query(lo, hi))) == before

    def test_automatic_rebuild_threshold(self, synthetic_collection):
        hybrid = HybridHINTm(synthetic_collection, num_bits=8, rebuild_threshold=0.01)
        lo, _ = synthetic_collection.span()
        threshold = int(0.01 * len(synthetic_collection)) + 1
        for i in range(threshold):
            hybrid.insert(Interval(30_000_000 + i, lo + i, lo + i + 5))
        assert hybrid.rebuilds >= 1
        assert hybrid.delta_size < threshold


class TestMixedWorkloadEquivalence:
    def test_table10_style_workload_matches_naive(self, synthetic_collection):
        """Replay a Table 10 workload against the oracle."""
        workload = generate_mixed_workload(
            synthetic_collection,
            num_queries=60,
            num_insertions=60,
            num_deletions=30,
            seed=5,
        )
        hybrid = HybridHINTm(workload.preload, num_bits=8)
        naive = NaiveIndex.build(workload.preload)
        for operation, payload in workload.operations:
            if operation is Operation.QUERY:
                assert sorted(hybrid.query(payload)) == sorted(naive.query(payload))
            elif operation is Operation.INSERT:
                hybrid.insert(payload)
                naive.insert(payload)
            else:
                assert hybrid.delete(payload) == naive.delete(payload)

    def test_queries_after_many_updates(self, synthetic_collection):
        hybrid = HybridHINTm(synthetic_collection, num_bits=9)
        naive = NaiveIndex.build(synthetic_collection)
        lo, hi = synthetic_collection.span()
        step = max(1, (hi - lo) // 100)
        for i in range(80):
            interval = Interval(40_000_000 + i, lo + i * step, lo + i * step + 3 * step)
            hybrid.insert(interval)
            naive.insert(interval)
        for sid in synthetic_collection.ids[:40]:
            assert hybrid.delete(int(sid)) == naive.delete(int(sid))
        queries = generate_queries(
            synthetic_collection, QueryWorkloadConfig(count=40, extent_fraction=0.02, seed=8)
        )
        for q in queries:
            assert sorted(hybrid.query(q)) == sorted(naive.query(q))
