"""WAL unit tests: framing, rotation, fsync policies, and the corruption
matrix -- every damage shape recovers or refuses deterministically.

Torn-tail semantics: damage in the *final* segment is what a crash
mid-append leaves behind, so recovery truncates at the first bad record
and keeps everything before it.  Damage anywhere else (a flipped checksum
mid-sequence, a missing segment file) would lose acknowledged updates, so
recovery refuses with :class:`WalCorruptionError` instead of guessing.
An empty-but-present checkpoint file refuses with :class:`CheckpointError`
-- it is not "no checkpoint", it is a checkpoint that failed to publish.
"""

import struct

import pytest

from repro.core.errors import CheckpointError, WalCorruptionError
from repro.core.interval import Interval, IntervalCollection
from repro.durability.checkpoint import (
    CHECKPOINT_FILE,
    load_checkpoint,
    write_checkpoint,
)
from repro.durability.wal import (
    MAGIC,
    WalRecord,
    WalWriter,
    list_segments,
    replay_wal,
    segment_path,
)
from repro.engine import IntervalStore


def _record(i, generation=None):
    return WalRecord(
        op="insert",
        interval_id=i,
        start=i * 10,
        end=i * 10 + 5,
        generation=generation if generation is not None else i + 1,
    )


def _write_records(directory, count, *, fsync="always", segment_bytes=None):
    kwargs = {"fsync": fsync}
    if segment_bytes is not None:
        kwargs["segment_bytes"] = segment_bytes
    writer = WalWriter(directory, **kwargs)
    for i in range(count):
        writer.append(_record(i))
    writer.close()
    return writer


def _collection(n=20):
    return IntervalCollection.from_intervals(
        [Interval(i, i * 10, i * 10 + 5) for i in range(n)]
    )


# ---------------------------------------------------------------------- #
# round-trip / rotation
# ---------------------------------------------------------------------- #
def test_append_replay_round_trip(tmp_path):
    _write_records(tmp_path, 7)
    records, report = replay_wal(tmp_path)
    assert [r.interval_id for r in records] == list(range(7))
    assert [r.generation for r in records] == list(range(1, 8))
    assert report.records == 7
    assert report.truncated_records == 0


def test_rotation_splits_segments_and_replay_merges_in_order(tmp_path):
    # tiny segments force many rotations (the writer floors at 1 KiB)
    _write_records(tmp_path, 100, segment_bytes=1024)
    segments = list_segments(tmp_path)
    assert len(segments) > 1
    assert [seq for seq, _ in segments] == list(range(len(segments)))
    records, report = replay_wal(tmp_path)
    assert [r.interval_id for r in records] == list(range(100))
    assert report.segments == len(segments)


@pytest.mark.parametrize("fsync", ["always", "interval", "off"])
def test_fsync_policies_all_round_trip(tmp_path, fsync):
    _write_records(tmp_path, 5, fsync=fsync)
    records, _ = replay_wal(tmp_path)
    assert len(records) == 5


def test_writer_rejects_unknown_fsync_policy(tmp_path):
    with pytest.raises(ValueError, match="fsync"):
        WalWriter(tmp_path, fsync="sometimes")


def test_reopened_writer_starts_a_fresh_segment(tmp_path):
    _write_records(tmp_path, 3)
    writer = WalWriter(tmp_path, start_seq=1)
    writer.append(_record(3))
    writer.close()
    assert [seq for seq, _ in list_segments(tmp_path)] == [0, 1]
    records, _ = replay_wal(tmp_path)
    assert [r.interval_id for r in records] == [0, 1, 2, 3]


# ---------------------------------------------------------------------- #
# the corruption matrix
# ---------------------------------------------------------------------- #
def test_torn_final_record_truncates_and_keeps_prefix(tmp_path):
    _write_records(tmp_path, 5)
    path = segment_path(tmp_path, 0)
    data = path.read_bytes()
    # tear the last record mid-payload, as a crash mid-write would
    path.write_bytes(data[:-7])
    records, report = replay_wal(tmp_path)
    assert [r.interval_id for r in records] == [0, 1, 2, 3]
    assert report.truncated_records == 1
    assert report.truncated_bytes > 0
    # the heal is physical: a second replay reads a clean log
    records2, report2 = replay_wal(tmp_path)
    assert [r.interval_id for r in records2] == [0, 1, 2, 3]
    assert report2.truncated_records == 0


def test_checksum_flip_in_final_segment_truncates_at_bad_record(tmp_path):
    _write_records(tmp_path, 6)
    path = segment_path(tmp_path, 0)
    data = bytearray(path.read_bytes())
    frame = 8 + struct.calcsize("<BqqqQ")  # header + payload
    # flip one payload byte of the 4th record: it and everything after drop
    offset = len(MAGIC) + 3 * frame + 8 + 2
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))
    records, report = replay_wal(tmp_path)
    assert [r.interval_id for r in records] == [0, 1, 2]
    assert report.truncated_records == 1


def test_checksum_flip_in_non_final_segment_refuses(tmp_path):
    _write_records(tmp_path, 100, segment_bytes=1024)
    segments = list_segments(tmp_path)
    assert len(segments) >= 2
    _, first = segments[0]
    data = bytearray(first.read_bytes())
    data[len(MAGIC) + 8 + 2] ^= 0xFF
    first.write_bytes(bytes(data))
    with pytest.raises(WalCorruptionError, match="checksum"):
        replay_wal(tmp_path)


def test_missing_segment_in_sequence_refuses(tmp_path):
    _write_records(tmp_path, 100, segment_bytes=1024)
    segments = list_segments(tmp_path)
    assert len(segments) >= 3
    segments[1][1].unlink()
    with pytest.raises(WalCorruptionError, match="missing WAL segment"):
        replay_wal(tmp_path)


def test_bad_magic_in_final_segment_discards_it(tmp_path):
    _write_records(tmp_path, 3)
    writer = WalWriter(tmp_path, start_seq=1)
    writer.append(_record(3))
    writer.close()
    path = segment_path(tmp_path, 1)
    data = path.read_bytes()
    path.write_bytes(b"XXXX" + data[4:])
    records, report = replay_wal(tmp_path)
    # the prior segment survives; the torn-magic final one contributes nothing
    assert [r.interval_id for r in records] == [0, 1, 2]
    assert report.truncated_records == 1


def test_bad_magic_in_non_final_segment_refuses(tmp_path):
    _write_records(tmp_path, 100, segment_bytes=1024)
    segments = list_segments(tmp_path)
    _, first = segments[0]
    first.write_bytes(b"XXXX" + first.read_bytes()[4:])
    with pytest.raises(WalCorruptionError, match="magic"):
        replay_wal(tmp_path)


def test_implausible_frame_length_is_torn_tail_in_final_segment(tmp_path):
    _write_records(tmp_path, 2)
    path = segment_path(tmp_path, 0)
    with open(path, "ab") as handle:
        handle.write(struct.pack("<II", 0xFFFFFFFF, 0))
    records, report = replay_wal(tmp_path)
    assert [r.interval_id for r in records] == [0, 1]
    assert report.truncated_records == 1


# ---------------------------------------------------------------------- #
# checkpoint file damage
# ---------------------------------------------------------------------- #
def test_absent_checkpoint_is_none_not_an_error(tmp_path):
    assert load_checkpoint(tmp_path) is None


def test_checkpoint_round_trip(tmp_path):
    write_checkpoint(
        tmp_path,
        generation=17,
        intervals=[[0, 1, 2], [5, 10, 20]],
        subscriptions=[{"subscription_id": 0, "start": 1, "end": 9,
                        "relation": None, "min_duration": 0,
                        "max_duration": None}],
        wal_seq=3,
    )
    payload = load_checkpoint(tmp_path)
    assert payload["generation"] == 17
    assert payload["intervals"] == [[0, 1, 2], [5, 10, 20]]
    assert payload["wal_seq"] == 3
    assert len(payload["subscriptions"]) == 1


def test_empty_but_present_checkpoint_refuses(tmp_path):
    (tmp_path / CHECKPOINT_FILE).write_bytes(b"")
    with pytest.raises(CheckpointError):
        load_checkpoint(tmp_path)


def test_garbage_checkpoint_refuses(tmp_path):
    (tmp_path / CHECKPOINT_FILE).write_text("{not json")
    with pytest.raises(CheckpointError):
        load_checkpoint(tmp_path)


def test_checkpoint_missing_keys_refuses(tmp_path):
    (tmp_path / CHECKPOINT_FILE).write_text('{"version": 1}')
    with pytest.raises(CheckpointError, match="missing"):
        load_checkpoint(tmp_path)


def test_leftover_checkpoint_tmp_is_ignored(tmp_path):
    # a crash between tmp write and publish leaves only the tmp file; the
    # directory still counts as "no checkpoint"
    write_checkpoint(
        tmp_path, generation=1, intervals=[], subscriptions=[], wal_seq=1
    )
    published = (tmp_path / CHECKPOINT_FILE).read_bytes()
    (tmp_path / CHECKPOINT_FILE).unlink()
    (tmp_path / (CHECKPOINT_FILE + ".tmp")).write_bytes(published)
    assert load_checkpoint(tmp_path) is None


# ---------------------------------------------------------------------- #
# the same matrix through IntervalStore.open (recover-or-refuse end-to-end)
# ---------------------------------------------------------------------- #
def test_open_recovers_torn_tail(tmp_path):
    store = IntervalStore.open(_collection(), "hintm_hybrid", wal_dir=str(tmp_path))
    store.insert(Interval(100, 3, 8))
    store.insert(Interval(101, 50, 60))
    expected_without_tail = sorted(store.query().overlapping(0, 10**6).ids())
    store.close()
    # tear the final record (the insert of 101): recovery drops exactly it
    segments = list_segments(tmp_path)
    last = segments[-1][1]
    last.write_bytes(last.read_bytes()[:-5])
    expected_without_tail.remove(101)
    store2 = IntervalStore.open(
        _collection(), "hintm_hybrid", wal_dir=str(tmp_path)
    )
    assert sorted(store2.query().overlapping(0, 10**6).ids()) == expected_without_tail
    store2.close()


def test_open_refuses_mid_sequence_damage(tmp_path):
    _write_records(tmp_path, 100, segment_bytes=1024)
    segments = list_segments(tmp_path)
    assert len(segments) >= 3
    segments[1][1].unlink()
    with pytest.raises(WalCorruptionError):
        IntervalStore.open(_collection(), "hintm_hybrid", wal_dir=str(tmp_path))


def test_open_refuses_empty_checkpoint(tmp_path):
    (tmp_path / CHECKPOINT_FILE).write_bytes(b"")
    with pytest.raises(CheckpointError):
        IntervalStore.open(_collection(), "hintm_hybrid", wal_dir=str(tmp_path))
