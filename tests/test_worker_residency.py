"""Worker residency cache under pressure: LRU eviction and supersession.

The worker-global residency cache (``_procworker._RESIDENTS``) is what makes
batch kernels cheap -- shard indexes and folded count columns survive between
batches -- but a long-lived pool serves *many* stores, so the cache is
bounded (``_MAX_RESIDENTS``) and a newer snapshot generation of the same
index supersedes every older one (the parent unlinked their shared blocks at
publication time, so keeping them would pin dead memory).

The deterministic halves drive ``_residency_for`` directly in this process
(the worker module is process-agnostic); the integration halves exercise a
real shared :class:`ProcessExecutor` pool across several concurrent stores,
on both start methods.
"""

import multiprocessing
from collections import OrderedDict

import pytest

from repro.core.interval import HAS_SHARED_MEMORY, Interval, Query
from repro.engine import ProcessExecutor, ShardedIndex
from repro.engine import _procworker
from repro.engine._procworker import (
    _MAX_RESIDENTS,
    _residency_for,
    resident_summary,
    resident_tokens,
)

pytestmark = pytest.mark.skipif(
    not HAS_SHARED_MEMORY, reason="no multiprocessing.shared_memory"
)


@pytest.fixture
def clean_residents():
    """Isolate this process's residency cache (normally only workers use it)."""
    saved = OrderedDict(_procworker._RESIDENTS)
    _procworker._RESIDENTS.clear()
    yield _procworker._RESIDENTS
    for residency in _procworker._RESIDENTS.values():
        residency.close()
    _procworker._RESIDENTS.clear()
    _procworker._RESIDENTS.update(saved)


def _indexes(collection, executor, count):
    kwargs = {} if executor is None else {"executor": executor}
    return [
        ShardedIndex(collection, backend="naive", num_shards=4, **kwargs)
        for _ in range(count)
    ]


def _uid_generations(tokens, uid):
    """Generations of every resident token belonging to ``uid``."""
    out = []
    for token in tokens:
        token_uid, gen, _ = token.split(":")
        if token_uid == uid:
            out.append(int(gen.lstrip("g")))
    return out


@pytest.fixture
def lazy_pool():
    """Snapshots only publish under a process executor; this one is never
    actually driven, so no worker processes spawn."""
    executor = ProcessExecutor(2)
    yield executor
    executor.close()


class TestResidencyCacheDeterministic:
    """Drive ``_residency_for`` directly: exact LRU and supersession order."""

    def test_lru_caps_and_evicts_oldest(
        self, synthetic_collection, clean_residents, lazy_pool
    ):
        indexes = _indexes(synthetic_collection, lazy_pool, _MAX_RESIDENTS + 2)
        try:
            specs = [index._residency_spec(index._epoch) for index in indexes]
            for spec in specs:
                _residency_for(spec)
            tokens = resident_tokens()
            assert len(tokens) == _MAX_RESIDENTS
            # the two oldest residencies were evicted, the rest kept in order
            assert tokens == tuple(spec.token for spec in specs[2:])
            # touching the now-oldest survivor refreshes its LRU position ...
            _residency_for(specs[2])
            # ... so the *next* insertion evicts specs[3], not specs[2]
            refreshed = ShardedIndex(
                synthetic_collection, backend="naive", num_shards=4, executor=lazy_pool
            )
            try:
                _residency_for(refreshed._residency_spec(refreshed._epoch))
                survivors = resident_tokens()
                assert specs[2].token in survivors
                assert specs[3].token not in survivors
            finally:
                refreshed.close()
        finally:
            for index in indexes:
                index.close()

    def test_new_generation_supersedes_same_uid(
        self, synthetic_collection, clean_residents, lazy_pool
    ):
        index = ShardedIndex(
            synthetic_collection, backend="naive", num_shards=4, executor=lazy_pool
        )
        try:
            old_spec = index._residency_spec(index._epoch)
            _residency_for(old_spec)
            lo, hi = synthetic_collection.span()
            index.insert(Interval(10**6, lo, hi))
            assert index.refresh_snapshot()
            new_spec = index._residency_spec(index._epoch)
            assert new_spec.generation > old_spec.generation
            _residency_for(new_spec)
            tokens = resident_tokens()
            # the stale generation was evicted eagerly, not left to LRU age-out
            assert old_spec.token not in tokens
            assert _uid_generations(tokens, index._uid) == [new_spec.generation]
        finally:
            index.close()


class TestResidencyInPool:
    """The same pressure through a real pool shared by concurrent stores."""

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_many_stores_stay_under_cap(self, synthetic_collection, method):
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {method!r} unavailable")
        lo, hi = synthetic_collection.span()
        queries = [Query(lo, hi), Query(lo, (lo + hi) // 2), Query((lo + hi) // 2, hi)]
        with ProcessExecutor(2, start_method=method) as executor:
            indexes = _indexes(synthetic_collection, executor, _MAX_RESIDENTS + 2)
            try:
                expected = [len(synthetic_collection.query_ids(q)) for q in queries]
                for index in indexes:
                    assert index.query_count_batch(queries) == expected
                per_worker = dict(
                    executor.map(resident_summary, list(range(executor.workers * 4)))
                )
                assert per_worker, "expected at least one worker to answer"
                for pid, tokens in per_worker.items():
                    assert len(tokens) <= _MAX_RESIDENTS, (
                        f"worker {pid} holds {len(tokens)} residencies; "
                        f"cap is {_MAX_RESIDENTS}"
                    )
                # the most recently served store is resident somewhere
                last_uid = indexes[-1]._uid
                assert any(
                    _uid_generations(tokens, last_uid)
                    for tokens in per_worker.values()
                )
            finally:
                for index in indexes:
                    index.close()

    def test_refresh_supersedes_in_workers(self, synthetic_collection):
        lo, hi = synthetic_collection.span()
        queries = [Query(lo, hi), Query(lo, (lo + hi) // 2), Query((lo + hi) // 2, hi)]
        with ProcessExecutor(2) as executor:
            index = ShardedIndex(
                synthetic_collection, backend="naive", num_shards=4, executor=executor
            )
            try:
                index.query_count_batch(queries)  # seed generation-0 residencies
                index.insert(Interval(10**6, lo, hi))
                assert index.refresh_snapshot()
                generation = index._generation
                # serve a few batches so every worker sees the new spec
                for _ in range(3):
                    counts = index.query_count_batch(queries)
                assert counts == [
                    len(synthetic_collection.query_ids(q)) + 1 for q in queries
                ]
                for pid, tokens in dict(
                    executor.map(resident_summary, list(range(executor.workers * 4)))
                ).items():
                    generations = _uid_generations(tokens, index._uid)
                    assert all(g == generation for g in generations), (
                        f"worker {pid} still holds stale generations "
                        f"{sorted(set(generations))} after refresh to "
                        f"g{generation}"
                    )
            finally:
                index.close()
